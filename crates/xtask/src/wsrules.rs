//! Workspace-level rules: analyses that need the whole file set (or
//! files outside the library walk) rather than one file at a time.
//!
//! Three rules live here, all built on the token stream from
//! [`crate::lexer`]:
//!
//! * **`lock-order`** — a static lock-order graph over every
//!   `wacs_sync::Ordered{Mutex,RwLock}` acquisition site. Each
//!   registration (`OrderedMutex::new("label", …)`) is resolved to the
//!   local binding or struct field it initializes; each `.lock()` /
//!   `.read()` / `.write()` on a resolved binding becomes a node, and
//!   acquiring `B` while a guard for `A` is still live adds the edge
//!   `A → B`. Any cycle in the global graph is an ABBA inversion the
//!   runtime lockdep may never have witnessed. Scope: same-file
//!   nesting (cross-file nesting through method calls stays the
//!   runtime detector's job); `#[cfg(test)]` regions are excluded —
//!   the wacs-sync test suite *deliberately* builds inversions.
//! * **`counter-schema`** — every metric key registered through
//!   `wacs-obs` (`registry.counter("…")`, `format!`-built names, and
//!   the helper-closure idiom `let c = |n| reg.counter(…); c("name")`)
//!   must appear in the EXPERIMENTS.md schema table, so no metric
//!   ships unsighted by the docs.
//! * **`frame-coverage`** — every on-the-wire frame variant
//!   (`protocol::Msg` and `stripe::StripeFrame`) must be exercised by
//!   the malformed-frame fuzz sweep in `tests/transparency.rs`
//!   (`random_msgs` builds one of each; a new variant that skips the
//!   sweep is a decode path no fuzzing hits).

use crate::lexer::{lex, string_content, Token, TokenKind};
use crate::rules::{test_region_lines, Rule, Violation};
use crate::{mask, scan};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Crates whose registrations are the instrument plumbing itself, not
/// product metrics: the registry, this analyzer, and the bench
/// harness's scratch histograms.
const COUNTER_SCHEMA_EXEMPT: &[&str] = &["crates/wacs-obs/", "crates/xtask/", "crates/bench/"];

/// Aggregate result of the workspace pass.
pub struct WsReport {
    pub violations: Vec<Violation>,
    /// Distinct lock labels seen at resolved acquisition sites.
    pub lock_nodes: usize,
    /// Distinct held→acquired label pairs.
    pub lock_edges: usize,
    /// Metric keys checked against the schema table.
    pub metric_keys: usize,
    /// Frame-enum variants found across the wire-protocol files
    /// (`protocol::Msg` + `stripe::StripeFrame`).
    pub frame_variants: usize,
}

/// Run every workspace rule. `files` are `(workspace-relative path,
/// source)` pairs for the library walk; `experiments` is the text of
/// EXPERIMENTS.md, `fuzz_sweep` the text of the transparency fuzz
/// test (either may be absent in a pruned checkout — rules that need
/// a missing anchor file report that instead of guessing).
pub fn analyze_workspace(
    files: &[(String, String)],
    experiments: Option<&str>,
    fuzz_sweep: Option<&str>,
) -> WsReport {
    let mut violations = Vec::new();
    let mut graph = LockGraph::default();
    let mut metric_keys = 0usize;

    for (path, source) in files {
        let toks = code_tokens(source);
        graph.scan_file(path, source, &toks);
        if !COUNTER_SCHEMA_EXEMPT.iter().any(|p| path.starts_with(p)) {
            metric_keys += check_counter_schema(path, source, &toks, experiments, &mut violations);
        }
    }
    graph.report_cycles(&mut violations);

    let frame_variants = check_frame_coverage(files, fuzz_sweep, &mut violations);

    WsReport {
        violations,
        lock_nodes: graph.nodes().len(),
        lock_edges: graph.edges.len(),
        metric_keys,
        frame_variants,
    }
}

/// Convenience for `main`: read the two anchor files relative to the
/// workspace root and run the pass.
pub fn analyze_root(root: &Path, files: &[(String, String)]) -> WsReport {
    let experiments = std::fs::read_to_string(root.join("EXPERIMENTS.md")).ok();
    let fuzz = std::fs::read_to_string(root.join("crates/nexus-proxy/tests/transparency.rs")).ok();
    analyze_workspace(files, experiments.as_deref(), fuzz.as_deref())
}

/// Load the library file set for `root` in the shape this module
/// wants.
pub fn load_files(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for path in scan::library_sources(root) {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        out.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(out)
}

/// Non-trivia tokens outside `#[cfg(test)]` regions, in source order.
fn code_tokens(source: &str) -> Vec<Token> {
    let masked = mask::mask(source);
    let test_lines = test_region_lines(&masked.code);
    lex(source)
        .into_iter()
        .filter(|t| !t.kind.is_trivia())
        .filter(|t| !test_lines.get(t.line - 1).copied().unwrap_or(false))
        .collect()
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// A guard currently held while scanning forward through a file.
struct HeldGuard {
    label: String,
    /// `let`-bound guard variable, if any (dropped by `drop(var)`).
    var: Option<String>,
    /// Brace depth at acquisition; popped when the block closes.
    depth: usize,
    /// Statement-temporary (no `let`): dropped at the next `;`.
    temp: bool,
}

#[derive(Default)]
struct LockGraph {
    /// held-label → acquired-label, with one witness site each.
    edges: BTreeMap<(String, String), (String, usize)>,
    /// Labels seen at any resolved acquisition or registration.
    labels: BTreeSet<String>,
}

impl LockGraph {
    fn nodes(&self) -> &BTreeSet<String> {
        &self.labels
    }

    fn scan_file(&mut self, path: &str, source: &str, toks: &[Token]) {
        let bindings = lock_bindings(source, toks);
        if bindings.is_empty() {
            return;
        }
        for label in bindings.values() {
            self.labels.insert(label.clone());
        }
        let mut held: Vec<HeldGuard> = Vec::new();
        let mut depth = 0usize;
        let mut i = 0usize;
        while i < toks.len() {
            let text = toks[i].text(source);
            match (toks[i].kind, text) {
                (TokenKind::Punct, "{") => depth += 1,
                (TokenKind::Punct, "}") => {
                    depth = depth.saturating_sub(1);
                    held.retain(|g| g.depth <= depth);
                }
                (TokenKind::Punct, ";") => held.retain(|g| !g.temp),
                (TokenKind::Ident, "drop") => {
                    // drop(var) releases a named guard early.
                    if let Some(var) = call_single_ident_arg(source, toks, i) {
                        held.retain(|g| g.var.as_deref() != Some(var));
                    }
                }
                (TokenKind::Punct, ".") => {
                    if let Some(label) = acquisition_at(source, toks, i, &bindings) {
                        for g in &held {
                            if g.label != label {
                                self.edges
                                    .entry((g.label.clone(), label.clone()))
                                    .or_insert_with(|| (path.to_string(), toks[i].line));
                            }
                        }
                        self.labels.insert(label.clone());
                        // A let-binding names the guard only when the
                        // lock call is the whole RHS (`let g =
                        // x.lock();`). In `let v = x.lock().get();`
                        // the guard is a temporary dead at the `;`,
                        // and `v` binds the projected value.
                        let var = let_binding_of_statement(source, toks, i)
                            .filter(|_| is_punct(toks.get(i + 4), source, ";"));
                        held.push(HeldGuard {
                            label,
                            temp: var.is_none(),
                            var: var.map(str::to_string),
                            depth,
                        });
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }

    fn report_cycles(&self, out: &mut Vec<Violation>) {
        // DFS over the label graph; any back edge is a cycle.
        let adj: BTreeMap<&str, Vec<&str>> = {
            let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (a, b) in self.edges.keys() {
                m.entry(a.as_str()).or_default().push(b.as_str());
            }
            m
        };
        let mut done: BTreeSet<&str> = BTreeSet::new();
        for start in adj.keys().copied() {
            if done.contains(start) {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            let mut path: Vec<&str> = vec![start];
            let mut on_path: BTreeSet<&str> = [start].into();
            while let Some((node, next)) = stack.last_mut() {
                let succ: &[&str] = adj.get(node).map_or(&[], Vec::as_slice);
                if *next < succ.len() {
                    let child = succ[*next];
                    *next += 1;
                    if on_path.contains(child) {
                        let pos = path.iter().position(|n| *n == child).unwrap_or(0);
                        let mut cycle: Vec<&str> = path[pos..].to_vec();
                        cycle.push(child);
                        let (file, line) = self
                            .edges
                            .get(&(path[path.len() - 1].to_string(), child.to_string()))
                            .cloned()
                            .unwrap_or_default();
                        out.push(Violation {
                            path: file,
                            line,
                            rule: Rule::LockOrder,
                            message: format!(
                                "static lock-order cycle: {} — acquire these locks in one \
                                 global order",
                                cycle.join(" -> ")
                            ),
                        });
                    } else if !done.contains(child) {
                        stack.push((child, 0));
                        path.push(child);
                        on_path.insert(child);
                    }
                } else {
                    done.insert(node);
                    on_path.remove(node);
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
}

/// Map binding/field idents to lock labels from registration sites:
/// `OrderedMutex::new("label", …)` / `OrderedRwLock::new("label", …)`.
fn lock_bindings(source: &str, toks: &[Token]) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[i].text(source);
        if name != "OrderedMutex" && name != "OrderedRwLock" {
            continue;
        }
        // Expect `:: new ( "label"`.
        let [c1, c2, new, paren, lit] = [i + 1, i + 2, i + 3, i + 4, i + 5].map(|j| toks.get(j));
        let shape_ok = is_punct(c1, source, ":")
            && is_punct(c2, source, ":")
            && new.is_some_and(|t| t.kind == TokenKind::Ident && t.text(source) == "new")
            && is_punct(paren, source, "(");
        let Some(label) = (if shape_ok {
            lit.and_then(|t| string_content(source, t))
        } else {
            None
        }) else {
            continue;
        };
        if let Some(binding) = binding_ident_before(source, toks, i) {
            map.insert(binding.to_string(), label.to_string());
        }
    }
    map
}

/// Walk backward from a registration to the binding it initializes:
/// the ident after `let` (skipping `mut`), or the nearest field ident
/// followed by a single `:`. Stops at statement/struct boundaries.
fn binding_ident_before<'a>(source: &'a str, toks: &[Token], reg: usize) -> Option<&'a str> {
    let mut field: Option<&str> = None;
    let mut j = reg;
    while j > 0 {
        j -= 1;
        let text = toks[j].text(source);
        match (toks[j].kind, text) {
            (TokenKind::Punct, ";" | "{" | "}" | ",") => break,
            (TokenKind::Ident, "let") => {
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.text(source) == "mut") {
                    k += 1;
                }
                return toks
                    .get(k)
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text(source));
            }
            (TokenKind::Ident, _) if field.is_none() => {
                // `name :` (single colon → field init / struct field).
                let single_colon = is_punct(toks.get(j + 1), source, ":")
                    && !is_punct(toks.get(j + 2), source, ":")
                    && !is_punct(j.checked_sub(1).and_then(|p| toks.get(p)), source, ":");
                if single_colon {
                    field = Some(text);
                }
            }
            _ => {}
        }
    }
    field
}

/// At a `.` token: is this `receiver.lock()` / `.read()` / `.write()`
/// with empty args, where `receiver` resolves to a registered lock?
/// Returns the lock label.
fn acquisition_at(
    source: &str,
    toks: &[Token],
    dot: usize,
    bindings: &BTreeMap<String, String>,
) -> Option<String> {
    let method = toks.get(dot + 1)?;
    if method.kind != TokenKind::Ident {
        return None;
    }
    if !matches!(method.text(source), "lock" | "read" | "write") {
        return None;
    }
    if !is_punct(toks.get(dot + 2), source, "(") || !is_punct(toks.get(dot + 3), source, ")") {
        return None;
    }
    // Receiver: ident directly before the dot, skipping one `[…]`
    // index group (`self.locks[i].lock()`).
    let mut j = dot.checked_sub(1)?;
    if is_punct(toks.get(j), source, "]") {
        let mut nest = 1usize;
        while nest > 0 {
            j = j.checked_sub(1)?;
            if is_punct(toks.get(j), source, "]") {
                nest += 1;
            } else if is_punct(toks.get(j), source, "[") {
                nest -= 1;
            }
        }
        j = j.checked_sub(1)?;
    }
    let recv = toks.get(j)?;
    if recv.kind != TokenKind::Ident {
        return None;
    }
    bindings.get(recv.text(source)).cloned()
}

/// If the statement containing token `at` starts with `let [mut] X =`,
/// return `X`.
fn let_binding_of_statement<'a>(source: &'a str, toks: &[Token], at: usize) -> Option<&'a str> {
    let mut j = at;
    while j > 0 {
        j -= 1;
        match (toks[j].kind, toks[j].text(source)) {
            (TokenKind::Punct, ";" | "{" | "}") => {
                j += 1;
                break;
            }
            _ if j == 0 => break,
            _ => {}
        }
    }
    if toks.get(j).is_some_and(|t| t.text(source) == "let") {
        let mut k = j + 1;
        if toks.get(k).is_some_and(|t| t.text(source) == "mut") {
            k += 1;
        }
        // Require the shape `let [mut] X = <ident>…`: a `*`/`&`/tuple
        // RHS means X binds a projected value, not the guard itself
        // (treating those as temporaries under-approximates hold
        // spans, which can only miss edges, never invent them).
        if !is_punct(toks.get(k + 1), source, "=")
            || toks.get(k + 2).is_none_or(|t| t.kind != TokenKind::Ident)
        {
            return None;
        }
        return toks
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(source));
    }
    None
}

/// `name ( ident )` — returns the single ident argument.
fn call_single_ident_arg<'a>(source: &'a str, toks: &[Token], name: usize) -> Option<&'a str> {
    if !is_punct(toks.get(name + 1), source, "(") {
        return None;
    }
    let arg = toks.get(name + 2)?;
    if arg.kind != TokenKind::Ident || !is_punct(toks.get(name + 3), source, ")") {
        return None;
    }
    Some(arg.text(source))
}

fn is_punct(t: Option<&Token>, source: &str, what: &str) -> bool {
    t.is_some_and(|t| t.kind == TokenKind::Punct && t.text(source) == what)
}

// ---------------------------------------------------------------------------
// counter-schema
// ---------------------------------------------------------------------------

/// Check every metric registration in one file against the schema
/// text; returns how many keys were checked.
fn check_counter_schema(
    path: &str,
    source: &str,
    toks: &[Token],
    experiments: Option<&str>,
    out: &mut Vec<Violation>,
) -> usize {
    let mut keys: Vec<(String, usize)> = Vec::new();

    // Helper closures: `let c = |n…| …registry.counter(…)…;` — calls
    // `c("name")` later register metrics under a dynamic prefix.
    let helpers = metric_helper_closures(source, toks);

    for i in 0..toks.len() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let name = toks[i].text(source);
        let line = toks[i].line;
        let is_reg_method = matches!(name, "counter" | "gauge" | "histogram")
            && i > 0
            && is_punct(toks.get(i - 1), source, ".")
            && is_punct(toks.get(i + 1), source, "(");
        if is_reg_method {
            for frag in metric_fragments(source, toks, i + 1) {
                keys.push((frag, line));
            }
        } else if helpers.contains(name) && is_punct(toks.get(i + 1), source, "(") {
            if let Some(t) = toks.get(i + 2) {
                if let Some(key) = string_content(source, t) {
                    keys.push((key.to_string(), line));
                }
            }
        }
    }

    let checked = keys.len();
    let Some(schema) = experiments else {
        if checked > 0 {
            out.push(Violation {
                path: path.to_string(),
                line: keys[0].1,
                rule: Rule::CounterSchema,
                message: "metrics registered but EXPERIMENTS.md is missing".into(),
            });
        }
        return checked;
    };
    for (key, line) in keys {
        if !schema.contains(&key) {
            out.push(Violation {
                path: path.to_string(),
                line,
                rule: Rule::CounterSchema,
                message: format!(
                    "metric key \"{key}\" is not in the EXPERIMENTS.md schema table; \
                     document it there"
                ),
            });
        }
    }
    checked
}

/// Names of closures in this file whose body registers through the
/// obs registry: `let c = |…| ….counter(…)` (and gauge/histogram).
fn metric_helper_closures(source: &str, toks: &[Token]) -> BTreeSet<String> {
    let mut helpers = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].text(source) != "let" || toks[i].kind != TokenKind::Ident {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        if !is_punct(toks.get(i + 2), source, "=") || !is_punct(toks.get(i + 3), source, "|") {
            continue;
        }
        // Scan to the end of the statement for a registry call.
        let mut j = i + 4;
        while j < toks.len() && !is_punct(toks.get(j), source, ";") {
            if toks[j].kind == TokenKind::Ident
                && matches!(toks[j].text(source), "counter" | "gauge" | "histogram")
                && is_punct(j.checked_sub(1).and_then(|p| toks.get(p)), source, ".")
                && is_punct(toks.get(j + 1), source, "(")
            {
                helpers.insert(name.text(source).to_string());
                break;
            }
            j += 1;
        }
    }
    helpers
}

/// Static name fragments of the first argument to a registration
/// call, starting at its `(` token. A plain string literal yields
/// itself; a `format!("{prefix}.name")` yields the literal pieces
/// between `{…}` holes. Fragments shorter than 3 chars (bare dots)
/// are delimiter noise and dropped.
fn metric_fragments(source: &str, toks: &[Token], paren: usize) -> Vec<String> {
    // Find the first string literal before the matching close paren.
    let mut depth = 0usize;
    let mut j = paren;
    while let Some(t) = toks.get(j) {
        match (t.kind, t.text(source)) {
            (TokenKind::Punct, "(") => depth += 1,
            (TokenKind::Punct, ")") => {
                if depth <= 1 {
                    return Vec::new();
                }
                depth -= 1;
            }
            (TokenKind::Str { .. } | TokenKind::RawStr { .. }, _) => {
                let Some(content) = string_content(source, t) else {
                    return Vec::new();
                };
                return content
                    .split(['{', '}'])
                    .step_by(2)
                    .map(|frag| frag.trim_matches('.'))
                    .filter(|frag| frag.len() >= 3 && frag.chars().any(char::is_alphanumeric))
                    .map(str::to_string)
                    .collect();
            }
            _ => {}
        }
        j += 1;
    }
    Vec::new()
}

// ---------------------------------------------------------------------------
// frame-coverage
// ---------------------------------------------------------------------------

/// On-the-wire frame enums and the files that define them: the relay
/// control protocol and the stripe bulk-data frames. Every variant of
/// each must be exercised by the transparency fuzz sweep.
const FRAME_ENUMS: &[(&str, &str)] = &[
    ("crates/nexus-proxy/src/protocol.rs", "Msg"),
    ("crates/nexus-proxy/src/stripe.rs", "StripeFrame"),
];

/// Every frame-enum variant must appear as `Enum::Variant` in the
/// fuzz sweep. Returns the total variant count across frame enums.
fn check_frame_coverage(
    files: &[(String, String)],
    fuzz_sweep: Option<&str>,
    out: &mut Vec<Violation>,
) -> usize {
    FRAME_ENUMS
        .iter()
        .map(|(path, name)| check_enum_coverage(files, fuzz_sweep, path, name, out))
        .sum()
}

/// Check one `(file, enum)` pair against the sweep. Returns the
/// variant count (0 when the file is absent from the walk).
fn check_enum_coverage(
    files: &[(String, String)],
    fuzz_sweep: Option<&str>,
    path: &str,
    enum_name: &str,
    out: &mut Vec<Violation>,
) -> usize {
    let Some((_, source)) = files.iter().find(|(p, _)| p == path) else {
        return 0;
    };
    let toks = code_tokens(source);
    let variants = enum_variants(source, &toks, enum_name);
    let Some(sweep) = fuzz_sweep else {
        if !variants.is_empty() {
            out.push(Violation {
                path: path.to_string(),
                line: variants[0].1,
                rule: Rule::FrameCoverage,
                message: format!(
                    "{enum_name} has frame variants but the transparency fuzz sweep \
                     is missing"
                ),
            });
        }
        return variants.len();
    };
    let covered = enum_paths(sweep, enum_name);
    for (name, line) in &variants {
        if !covered.contains(name.as_str()) {
            out.push(Violation {
                path: path.to_string(),
                line: *line,
                rule: Rule::FrameCoverage,
                message: format!(
                    "{enum_name}::{name} is never built by the malformed-frame fuzz \
                     sweep (tests/transparency.rs random_msgs)"
                ),
            });
        }
    }
    variants.len()
}

/// Variant names (with lines) of `enum <name> { … }`.
fn enum_variants(source: &str, toks: &[Token], name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(start) = (0..toks.len()).find(|&i| {
        toks[i].kind == TokenKind::Ident
            && toks[i].text(source) == "enum"
            && toks.get(i + 1).is_some_and(|t| t.text(source) == name)
            && is_punct(toks.get(i + 2), source, "{")
    }) else {
        return out;
    };
    let mut depth = 1usize;
    let mut j = start + 3;
    let mut at_variant = true;
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        match (t.kind, t.text(source)) {
            (TokenKind::Punct, "{" | "(") => {
                depth += 1;
                at_variant = false;
            }
            (TokenKind::Punct, "}" | ")") => {
                depth -= 1;
            }
            (TokenKind::Punct, ",") if depth == 1 => at_variant = true,
            // Skip `#[...]` attribute groups wholesale so they neither
            // consume the variant slot nor disturb the depth count.
            (TokenKind::Punct, "#") if is_punct(toks.get(j + 1), source, "[") => {
                let mut d = 0usize;
                j += 1;
                while j < toks.len() {
                    if toks[j].kind == TokenKind::Punct {
                        match toks[j].text(source) {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    j += 1;
                }
            }
            (TokenKind::Punct, "[") => depth += 1,
            (TokenKind::Punct, "]") => depth = depth.saturating_sub(1),
            (TokenKind::Ident, v) if depth == 1 && at_variant => {
                out.push((v.to_string(), t.line));
                at_variant = false;
            }
            _ => {}
        }
        j += 1;
    }
    out
}

/// All `<name>::X` paths mentioned in a source text.
fn enum_paths(source: &str, name: &str) -> BTreeSet<String> {
    let toks: Vec<Token> = lex(source)
        .into_iter()
        .filter(|t| !t.kind.is_trivia())
        .collect();
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokenKind::Ident
            && toks[i].text(source) == name
            && is_punct(toks.get(i + 1), source, ":")
            && is_punct(toks.get(i + 2), source, ":")
        {
            if let Some(v) = toks.get(i + 3).filter(|t| t.kind == TokenKind::Ident) {
                out.insert(v.text(source).to_string());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)], schema: Option<&str>, sweep: Option<&str>) -> WsReport {
        let owned: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        analyze_workspace(&owned, schema, sweep)
    }

    #[test]
    fn lock_order_clean_on_consistent_nesting() {
        let src = r#"
use wacs_sync::OrderedMutex;
struct S { a: OrderedMutex<u32>, b: OrderedMutex<u32> }
impl S {
    fn new() -> S {
        S { a: OrderedMutex::new("lk.a", 0), b: OrderedMutex::new("lk.b", 0) }
    }
    fn f(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
        drop(h);
        drop(g);
    }
    fn g(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
}
"#;
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lock_nodes, 2);
        assert_eq!(r.lock_edges, 1);
    }

    #[test]
    fn lock_order_cycle_detected_across_functions() {
        let src = r#"
struct S { a: OrderedMutex<u32>, b: OrderedMutex<u32> }
impl S {
    fn new() -> S {
        S { a: OrderedMutex::new("lk.a", 0), b: OrderedMutex::new("lk.b", 0) }
    }
    fn ab(&self) {
        let g = self.a.lock();
        let h = self.b.lock();
    }
    fn ba(&self) {
        let g = self.b.lock();
        let h = self.a.lock();
    }
}
"#;
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::LockOrder);
        assert!(r.violations[0].message.contains("lk.a"));
        assert!(r.violations[0].message.contains("lk.b"));
    }

    #[test]
    fn lock_order_drop_breaks_the_edge() {
        let src = r#"
fn f() {
    let a = OrderedMutex::new("seq.a", 0);
    let b = OrderedMutex::new("seq.b", 0);
    let g = a.lock();
    drop(g);
    let h = b.lock();
    drop(h);
    let h2 = b.lock();
    drop(h2);
    let g2 = a.lock();
}
"#;
        // Sequential (never nested) acquisitions in both orders: no
        // edges at all, so no cycle.
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lock_edges, 0);
    }

    #[test]
    fn lock_order_temporary_guard_released_at_statement_end() {
        let src = r#"
struct S { a: OrderedMutex<u32>, b: OrderedMutex<u32> }
impl S {
    fn new() -> S {
        S { a: OrderedMutex::new("tmp.a", 0), b: OrderedMutex::new("tmp.b", 0) }
    }
    fn f(&self) {
        let x = self.a.lock().wrapping_add(1);
        let y = self.b.lock().wrapping_add(x);
    }
    fn g(&self) {
        let h = self.b.lock();
        let x = self.a.lock().wrapping_add(*h);
    }
}
"#;
        // f(): a's guard is a temporary, dead by the time b locks.
        // g(): b is held across a's acquisition → edge b→a only; with
        // no a→b edge anywhere there is no cycle.
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lock_edges, 1);
    }

    #[test]
    fn lock_order_ignores_test_regions() {
        let src = r#"
fn lib() {}
#[cfg(test)]
mod tests {
    fn abba() {
        let a = OrderedMutex::new("t.a", 0);
        let b = OrderedMutex::new("t.b", 0);
        let g = a.lock();
        let h = b.lock();
        drop(h); drop(g);
        let h = b.lock();
        let g = a.lock();
    }
}
"#;
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lock_edges, 0);
    }

    #[test]
    fn lock_order_indexed_receiver_resolves() {
        let src = r#"
struct R { inject: Vec<OrderedMutex<u32>>, workers: OrderedMutex<u32> }
impl R {
    fn new(n: usize) -> R {
        R {
            inject: (0..n).map(|_| OrderedMutex::new("rx.inject", 0)).collect(),
            workers: OrderedMutex::new("rx.workers", 0),
        }
    }
    fn f(&self, i: usize) {
        let w = self.workers.lock();
        let q = self.inject[i].lock();
    }
}
"#;
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(""), Some(""));
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.lock_edges, 1);
        assert_eq!(r.lock_nodes, 2);
    }

    #[test]
    fn counter_schema_flags_undocumented_keys() {
        let src = r#"
fn wire(reg: &wacs_obs::Registry) {
    let a = reg.counter("demo.documented");
    let b = reg.gauge("demo.missing_gauge");
}
"#;
        let schema = "| `demo.documented` | count |";
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(schema), Some(""));
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::CounterSchema);
        assert!(r.violations[0].message.contains("demo.missing_gauge"));
        assert_eq!(r.metric_keys, 2);
    }

    #[test]
    fn counter_schema_handles_format_and_helper_closures() {
        let src = r#"
fn wire(reg: &wacs_obs::Registry, prefix: &str) {
    let h = reg.histogram(&format!("{prefix}.leg_in_ns"));
    let c = |n: &str| reg.counter(&format!("{prefix}.{n}"));
    let hits = c("pool_hits");
    let misses = c("pool_ghosts");
}
"#;
        let schema = "`x.leg_in_ns` and `x.pool_hits` are documented";
        let r = ws(&[("crates/demo/src/lib.rs", src)], Some(schema), Some(""));
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert!(r.violations[0].message.contains("pool_ghosts"));
        // leg_in_ns + pool_hits + pool_ghosts (the bare {prefix}.{n}
        // format has no static fragment ≥ 3 chars).
        assert_eq!(r.metric_keys, 3);
    }

    #[test]
    fn counter_schema_exempts_infra_crates() {
        let src = "fn f(reg: &Registry) { let c = reg.counter(\"scratch\"); }\n";
        for path in [
            "crates/wacs-obs/src/lib.rs",
            "crates/xtask/src/main.rs",
            "crates/bench/src/bin/proxy_bench.rs",
        ] {
            let r = ws(&[(path, src)], Some(""), Some(""));
            assert!(r.violations.is_empty(), "{path}");
        }
    }

    #[test]
    fn frame_coverage_flags_unfuzzed_variants() {
        let proto = r#"
pub enum Msg {
    Ping { seq: u32 },
    Pong { seq: u32 },
    Busy(String),
}
"#;
        let sweep =
            "fn random_msgs() { let a = Msg::Ping { seq: 1 }; let b = Msg::Pong { seq: 1 }; }";
        let r = ws(
            &[("crates/nexus-proxy/src/protocol.rs", proto)],
            Some(""),
            Some(sweep),
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::FrameCoverage);
        assert!(r.violations[0].message.contains("Msg::Busy"));
        assert_eq!(r.frame_variants, 3);
    }

    #[test]
    fn enum_variant_extraction_skips_fields_and_attrs() {
        let src = r#"
#[derive(Debug)]
pub enum Msg {
    /// doc
    Connect { host: String, port: u16 },
    Data(Vec<u8>),
    #[allow(dead_code)]
    Close,
}
"#;
        let toks = code_tokens(src);
        let names: Vec<String> = enum_variants(src, &toks, "Msg")
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["Connect", "Data", "Close"]);
    }

    /// The real workspace must be clean: zero cycles, all metric keys
    /// documented, all frames fuzzed. This is the acceptance gate run
    /// as a unit test.
    #[test]
    fn real_workspace_is_clean() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root");
        let files = load_files(root).expect("load workspace sources");
        let report = analyze_root(root, &files);
        assert!(
            report.violations.is_empty(),
            "workspace rule violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("{}:{}: {}", v.path, v.line, v.message))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.lock_nodes >= 5, "nodes: {}", report.lock_nodes);
        assert!(report.metric_keys >= 40, "keys: {}", report.metric_keys);
        assert_eq!(report.frame_variants, 16);
    }

    #[test]
    fn frame_coverage_flags_unfuzzed_stripe_frames() {
        let stripe = r#"
pub enum StripeFrame {
    Open { transfer: u64 },
    Data { transfer: u64 },
    Fin { transfer: u64 },
    Done { transfer: u64 },
}
"#;
        let sweep = "fn random_msgs() { let a = StripeFrame::Open { transfer: 1 }; \
                     let b = StripeFrame::Data { transfer: 1 }; \
                     let c = StripeFrame::Fin { transfer: 1 }; }";
        let r = ws(
            &[("crates/nexus-proxy/src/stripe.rs", stripe)],
            Some(""),
            Some(sweep),
        );
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].rule, Rule::FrameCoverage);
        assert!(r.violations[0].message.contains("StripeFrame::Done"));
        assert_eq!(r.frame_variants, 4);
    }
}
