//! Workspace lint analyzer (`cargo run -p xtask -- lint`).
//!
//! A dependency-free static pass over every library source file in the
//! workspace, enforcing the project conventions that rustc and clippy
//! cannot express:
//!
//! * **`unwrap-panic`** — no `.unwrap()`, `.expect(...)`, or `panic!`
//!   in non-test library code. Daemon code (gatekeeper, proxy pumps,
//!   MPI progress loops) must degrade via `Result`, not abort: the
//!   paper's wide-area runs go through firewalls, and remote bytes
//!   must never be able to kill a process.
//! * **`std-sync`** — no direct `std::sync::Mutex`/`RwLock` outside
//!   `wacs-sync`. The workspace lock standard is `wacs_sync::{Mutex,
//!   RwLock}` (poison-transparent) and `wacs_sync::Ordered*` (lock-
//!   order checked) so the deadlock detector sees every acquisition.
//! * **`port-literal`** — the well-known service ports (NXPORT 911,
//!   OUTER_PORT 5678, GATEKEEPER_PORT 2119) may appear as literals
//!   only at their canonical definition sites; everything else must
//!   name the constant, so changing a port is a one-line edit.
//! * **`todo`** — no `todo!()`/`unimplemented!()` in library crates.
//!
//! The analyzer masks comments, strings, and char literals before
//! matching (a doc-comment mentioning `.unwrap()` is fine) and skips
//! `#[cfg(test)]`/`#[test]` regions by brace tracking. A finding on a
//! line carrying `// lint:allow(<rule>)` is suppressed — the escape
//! hatch for the rare justified exception, greppable by design.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod lexer;
mod mask;
mod rules;
mod scan;
mod wsrules;

pub use rules::{Rule, Violation};

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--root <dir>]");
    eprintln!("       cargo run -p xtask -- check [--deep]");
    eprintln!("       cargo run -p xtask -- rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.iter().position(|a| a == "--root") {
                Some(i) => match args.get(i + 1) {
                    Some(dir) => PathBuf::from(dir),
                    None => return usage(),
                },
                None => workspace_root(),
            };
            run_lint(&root)
        }
        Some("check") => run_check(args.iter().any(|a| a == "--deep")),
        Some("rules") => {
            for rule in rules::ALL {
                println!("{:<14} {}", rule.name(), rule.summary());
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

/// Exhaustively explore the liveness/concurrency state machines
/// (`wacs-check`): the smoke tier by default (< 30 s), `--deep` for
/// the full documented bounds.
fn run_check(deep: bool) -> ExitCode {
    let reports = wacs_check::run_all(deep);
    let mut failed = false;
    for r in &reports {
        println!("{r}");
        if let Some(cx) = &r.violation {
            failed = true;
            println!("  counterexample ({}):", cx.reason);
            for (i, step) in cx.trace.iter().enumerate() {
                println!("    {:>3}. {step}", i + 1);
            }
        }
        if !r.exhausted {
            failed = true;
            println!("  exploration hit the state bound before exhausting the space");
        }
    }
    if failed {
        println!("xtask check: FAILED");
        ExitCode::FAILURE
    } else {
        println!(
            "xtask check: {} models exhaustively verified ({} tier)",
            reports.len(),
            if deep { "deep" } else { "smoke" }
        );
        ExitCode::SUCCESS
    }
}

/// The workspace root: xtask always runs via `cargo run -p xtask`, so
/// the manifest dir of this crate is `<root>/crates/xtask`.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}

fn run_lint(root: &Path) -> ExitCode {
    let Ok(files) = wsrules::load_files(root) else {
        eprintln!("xtask lint: unreadable sources under {}", root.display());
        return ExitCode::FAILURE;
    };
    if files.is_empty() {
        eprintln!("xtask lint: no sources found under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut violations = Vec::new();
    for (rel, text) in &files {
        violations.extend(rules::analyze(rel, text));
    }
    let ws = wsrules::analyze_root(root, &files);
    violations.extend(ws.violations);
    for v in &violations {
        println!("{v}");
    }
    println!(
        "xtask lint: lock-order graph: {} locks, {} nesting edges, {} cycle(s); \
         {} metric keys checked; {} frame variants covered",
        ws.lock_nodes,
        ws.lock_edges,
        violations
            .iter()
            .filter(|v| v.rule == Rule::LockOrder)
            .count(),
        ws.metric_keys,
        ws.frame_variants,
    );
    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {} files",
            violations.len(),
            files.len()
        );
        ExitCode::FAILURE
    }
}

/// Shared display impl lives here so `main` stays the only printer.
impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}
