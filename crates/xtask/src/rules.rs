//! The rule set and the per-file analysis driver.

use crate::mask::mask;

/// One enforced convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `.unwrap()` / `.expect(` / `panic!` in non-test library code.
    UnwrapPanic,
    /// `std::sync::Mutex`/`RwLock` outside the `wacs-sync` wrappers.
    StdSync,
    /// Well-known service port literal outside its definition site.
    PortLiteral,
    /// `todo!` / `unimplemented!` anywhere in library code.
    Todo,
    /// `.unwrap_or(...)` on a `require_u64(...)` result in non-test
    /// code: a *required* wire field silently replaced by a default.
    RequireUnwrapOr,
    /// Bare `AtomicU64` metric counter outside `wacs-obs`: new
    /// instrumentation must go through the registry so it shows up in
    /// snapshots and replay tests.
    BareAtomicCounter,
    /// A blocking `.read_exact(` / `.accept()` in a file that never
    /// sets a read timeout or non-blocking mode: a dead peer parks the
    /// thread forever. Mark deliberate blocking sites with
    /// `lint:allow(deadline-io)`.
    DeadlineIo,
    /// `vec![0u8; ...]` in the relay data-plane hot files: per-chunk
    /// allocation is what the shared [`BufferPool`] exists to remove.
    /// The pool's own sanctioned allocation site carries
    /// `lint:allow(hot-path-alloc)`.
    HotPathAlloc,
    /// Bare `thread::sleep(` in non-test library code: chaos-layer
    /// timing must come from deadline-based waits (condvar timeouts,
    /// `set_read_timeout`), not open-loop sleeps, or recovery-time
    /// measurements inherit the sleep quantum as noise. Deliberate
    /// bounded backoffs carry `lint:allow(bare-sleep)`; the bench
    /// harness is exempt wholesale.
    BareSleep,
    /// A cycle in the static lock-order graph over
    /// `Ordered{Mutex,RwLock}` acquisition sites (see `wsrules`).
    LockOrder,
    /// A `wacs-obs` metric key registered in code but absent from the
    /// EXPERIMENTS.md schema table (see `wsrules`).
    CounterSchema,
    /// A `protocol::Msg` variant never built by the malformed-frame
    /// fuzz sweep (see `wsrules`).
    FrameCoverage,
}

pub const ALL: &[Rule] = &[
    Rule::UnwrapPanic,
    Rule::StdSync,
    Rule::PortLiteral,
    Rule::Todo,
    Rule::RequireUnwrapOr,
    Rule::BareAtomicCounter,
    Rule::DeadlineIo,
    Rule::HotPathAlloc,
    Rule::BareSleep,
    Rule::LockOrder,
    Rule::CounterSchema,
    Rule::FrameCoverage,
];

impl Rule {
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnwrapPanic => "unwrap-panic",
            Rule::StdSync => "std-sync",
            Rule::PortLiteral => "port-literal",
            Rule::Todo => "todo",
            Rule::RequireUnwrapOr => "require-unwrap-or",
            Rule::BareAtomicCounter => "bare-atomic-counter",
            Rule::DeadlineIo => "deadline-io",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::BareSleep => "bare-sleep",
            Rule::LockOrder => "lock-order",
            Rule::CounterSchema => "counter-schema",
            Rule::FrameCoverage => "frame-coverage",
        }
    }

    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnwrapPanic => "no .unwrap()/.expect()/panic! outside #[cfg(test)] code",
            Rule::StdSync => "use wacs_sync::{Mutex, RwLock} instead of std::sync locks",
            Rule::PortLiteral => {
                "well-known ports (911/5678/2119) must reference the named constants"
            }
            Rule::Todo => "no todo!()/unimplemented!() in library crates",
            Rule::RequireUnwrapOr => {
                "required wire fields must error, not .unwrap_or(...) a default"
            }
            Rule::BareAtomicCounter => {
                "metric counters belong in the wacs_obs registry, not bare AtomicU64s"
            }
            Rule::DeadlineIo => {
                "blocking read_exact/accept needs a read timeout, non-blocking mode, \
                 or an explicit lint:allow(deadline-io)"
            }
            Rule::HotPathAlloc => {
                "no vec![0u8; ...] in pump/reactor/pool hot loops; take a segment \
                 from the shared BufferPool"
            }
            Rule::BareSleep => {
                "no bare thread::sleep in library code; wait on a deadline \
                 (or mark a bounded backoff with lint:allow(bare-sleep))"
            }
            Rule::LockOrder => "the static lock-order graph over Ordered locks must be acyclic",
            Rule::CounterSchema => {
                "every registered wacs-obs metric key must appear in EXPERIMENTS.md"
            }
            Rule::FrameCoverage => "every protocol::Msg variant must be hit by the fuzz sweep",
        }
    }
}

/// A single diagnostic.
#[derive(Debug, Clone)]
pub struct Violation {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

/// The well-known service ports of the system (NXPORT, OUTER_PORT,
/// GATEKEEPER_PORT) — flagged as raw literals anywhere else.
const KNOWN_PORTS: &[&str] = &["911", "5678", "2119"];

/// Files allowed to spell the well-known ports as literals: their
/// canonical definition sites.
const PORT_DEFINITION_SITES: &[&str] = &["crates/firewall/src/lib.rs", "crates/nexus/src/ports.rs"];

/// The crate allowed to touch `std::sync` locks directly (it wraps
/// them), plus this analyzer itself (it names them in diagnostics).
const STD_SYNC_EXEMPT: &[&str] = &["crates/wacs-sync/", "crates/xtask/"];

/// Crates allowed to declare raw `AtomicU64`s: the registry itself
/// (its instruments *are* atomics) and this analyzer.
const ATOMIC_COUNTER_EXEMPT: &[&str] = &["crates/wacs-obs/", "crates/xtask/"];

/// Crates whose open-loop sleeps are load-generation pacing, not
/// product timing: the bench harness sleeps on purpose.
const BARE_SLEEP_EXEMPT: &[&str] = &["crates/bench/"];

/// The relay data-plane hot files: every staging buffer there must come
/// from the shared `BufferPool`, not a per-call `vec![0u8; ...]`.
const HOT_PATH_FILES: &[&str] = &[
    "crates/nexus-proxy/src/pump.rs",
    "crates/nexus-proxy/src/reactor.rs",
    "crates/nexus-proxy/src/pool.rs",
];

/// Analyze one file; `path` is workspace-relative with `/` separators.
pub fn analyze(path: &str, source: &str) -> Vec<Violation> {
    let masked = mask(source);
    let test_lines = test_region_lines(&masked.code);
    let originals: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();

    let port_site = PORT_DEFINITION_SITES.contains(&path);
    let hot_path = HOT_PATH_FILES.contains(&path);
    let sync_exempt = STD_SYNC_EXEMPT.iter().any(|p| path.starts_with(p));
    let sleep_exempt = BARE_SLEEP_EXEMPT.iter().any(|p| path.starts_with(p));
    let atomic_exempt = ATOMIC_COUNTER_EXEMPT.iter().any(|p| path.starts_with(p));
    // File-level deadline evidence: a file that configures timeouts or
    // non-blocking mode anywhere has thought about liveness; one that
    // never does gets its blocking calls flagged.
    let has_deadline_evidence =
        masked.code.contains("set_read_timeout") || masked.code.contains("set_nonblocking");

    for (idx, line) in masked.code.lines().enumerate() {
        let lineno = idx + 1;
        let in_test = test_lines.get(idx).copied().unwrap_or(false);
        let original = originals.get(idx).copied().unwrap_or("");
        // rustfmt may float a trailing marker onto its own line, so a
        // marker directly above or below the flagged line counts too.
        let above = idx.checked_sub(1).and_then(|i| originals.get(i)).copied();
        let below = originals.get(idx + 1).copied();
        let mut push = |rule: Rule, message: String| {
            let marked = allowed(original, rule)
                || above.is_some_and(|l| l.trim_start().starts_with("//") && allowed(l, rule))
                || below.is_some_and(|l| l.trim_start().starts_with("//") && allowed(l, rule));
            if !marked {
                out.push(Violation {
                    path: path.to_string(),
                    line: lineno,
                    rule,
                    message,
                });
            }
        };

        if !in_test {
            if line.contains(".unwrap()") {
                push(
                    Rule::UnwrapPanic,
                    "`.unwrap()` in library code; return a Result or use unwrap_or_*".into(),
                );
            }
            if line.contains(".expect(") {
                push(
                    Rule::UnwrapPanic,
                    "`.expect(...)` in library code; return a Result".into(),
                );
            }
            if has_macro(line, "panic") {
                push(
                    Rule::UnwrapPanic,
                    "`panic!` in library code; return an error".into(),
                );
            }
            if line.contains("require_u64(") && line.contains(".unwrap_or") {
                push(
                    Rule::RequireUnwrapOr,
                    "`.unwrap_or(...)` swallows a missing required field; \
                     reject the record instead"
                        .into(),
                );
            }
            if !port_site {
                for port in KNOWN_PORTS {
                    if has_bare_number(line, port) {
                        push(
                            Rule::PortLiteral,
                            format!("raw well-known port {port}; name the constant"),
                        );
                    }
                }
            }
            // Declarations/constructions only — a plain `use` import is
            // inert until a flagged site actually names the type.
            if !atomic_exempt
                && line.contains("AtomicU64")
                && !line.trim_start().starts_with("use ")
                && !line.trim_start().starts_with("pub use ")
            {
                push(
                    Rule::BareAtomicCounter,
                    "bare `AtomicU64` counter; use wacs_obs::Counter so the metric \
                     lands in registry snapshots"
                        .into(),
                );
            }
            if !has_deadline_evidence
                && (line.contains(".read_exact(") || line.contains(".accept()"))
            {
                push(
                    Rule::DeadlineIo,
                    "blocking I/O with no deadline in this file; set a read timeout \
                     (or mark the site deliberate)"
                        .into(),
                );
            }
            if !sleep_exempt && line.contains("thread::sleep(") {
                push(
                    Rule::BareSleep,
                    "bare `thread::sleep` in library code; wait on a deadline \
                     (condvar timeout / read timeout) or mark a bounded backoff \
                     deliberate"
                        .into(),
                );
            }
            if hot_path && line.contains("vec![0u8;") {
                push(
                    Rule::HotPathAlloc,
                    "per-call buffer allocation in a relay hot loop; draw a pooled \
                     segment from the shared BufferPool"
                        .into(),
                );
            }
        }
        if !sync_exempt
            && (line.contains("std::sync::Mutex")
                || line.contains("std::sync::RwLock")
                || std_sync_use_names_lock(line))
        {
            push(
                Rule::StdSync,
                "std::sync lock; use wacs_sync::{Mutex, RwLock} (or Ordered*)".into(),
            );
        }
        if has_macro(line, "todo") {
            push(Rule::Todo, "`todo!` left in source".into());
        }
        if has_macro(line, "unimplemented") {
            push(Rule::Todo, "`unimplemented!` left in source".into());
        }
    }
    out
}

/// `// lint:allow(rule)` on the line suppresses that rule there.
fn allowed(original_line: &str, rule: Rule) -> bool {
    original_line
        .split("lint:allow(")
        .nth(1)
        .and_then(|rest| rest.split(')').next())
        .is_some_and(|list| list.split(',').any(|r| r.trim() == rule.name()))
}

/// Match `name!` as a macro invocation: preceding byte must not be
/// part of an identifier (so `dont_panic!` doesn't match `panic!`),
/// and the `!` must directly follow the name.
fn has_macro(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(name) {
        let start = from + pos;
        let end = start + name.len();
        let pre_ok = start == 0 || {
            let p = bytes[start - 1];
            !(p.is_ascii_alphanumeric() || p == b'_')
        };
        if pre_ok && bytes.get(end) == Some(&b'!') {
            return true;
        }
        from = end;
    }
    false
}

/// Match a number as a standalone token: neither neighbour may be an
/// identifier or digit byte, nor `.` (so `5678.0`, `x5678`, `0x5678`
/// and `15678` don't match).
fn has_bare_number(line: &str, num: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(num) {
        let start = from + pos;
        let end = start + num.len();
        let pre_ok = start == 0 || {
            let p = bytes[start - 1];
            !(p.is_ascii_alphanumeric() || p == b'_' || p == b'.')
        };
        let post_ok = end >= bytes.len() || {
            let n = bytes[end];
            !(n.is_ascii_alphanumeric() || n == b'_' || n == b'.')
        };
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

/// `use std::sync::{...}` pulling in `Mutex` or `RwLock` by name.
fn std_sync_use_names_lock(line: &str) -> bool {
    let Some(rest) = line
        .trim_start()
        .strip_prefix("use std::sync::")
        .or_else(|| line.trim_start().strip_prefix("pub use std::sync::"))
    else {
        return false;
    };
    rest.contains("Mutex") || rest.contains("RwLock")
}

/// Per-line flags: is this line inside a `#[cfg(test)]` / `#[test]`
/// region? Determined by brace tracking on the masked source: a test
/// attribute arms the tracker; the next `{` opens a region that ends
/// when depth returns to its opening level. Shared with the
/// workspace-level rules in `wsrules`.
pub(crate) fn test_region_lines(masked: &str) -> Vec<bool> {
    let mut flags = Vec::new();
    let mut depth: i32 = 0;
    let mut armed = false;
    // Depth at which each active test region opened.
    let mut regions: Vec<i32> = Vec::new();
    for line in masked.lines() {
        let armed_at_line_start = armed;
        if is_test_attr(line) {
            armed = true;
        }
        let mut line_in_test = !regions.is_empty() || armed || armed_at_line_start;
        for c in line.chars() {
            match c {
                '{' => {
                    if armed {
                        regions.push(depth);
                        armed = false;
                        line_in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if regions.last() == Some(&depth) {
                        regions.pop();
                    }
                }
                _ => {}
            }
        }
        flags.push(line_in_test || !regions.is_empty());
    }
    flags
}

/// Attribute lines that mark the following item as test-only.
fn is_test_attr(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("#[test]")
        || t.starts_with("#[cfg(test)]")
        || t.starts_with("#[cfg(all(test")
        || t.starts_with("#[cfg(any(test")
        || t.starts_with("#[should_panic")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<(usize, Rule)> {
        analyze(path, src)
            .into_iter()
            .map(|v| (v.line, v.rule))
            .collect()
    }

    /// The seeded violation of the acceptance criteria: a bare
    /// `.unwrap()` in library code is flagged with its line number.
    #[test]
    fn seeded_unwrap_violation_is_flagged() {
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(2, Rule::UnwrapPanic)]
        );
    }

    #[test]
    fn expect_and_panic_flagged() {
        let src = "fn f() {\n    g().expect(\"boom\");\n    panic!(\"no\");\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(2, Rule::UnwrapPanic), (3, Rule::UnwrapPanic)]
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "\
pub fn lib() -> u32 { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::lib_result().unwrap();
        panic!(\"fine in tests\");
    }
}
";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn comments_strings_and_doctests_are_exempt() {
        let src = "\
/// Call `.unwrap()` — documented panics are fine:
/// ```
/// demo::f().unwrap();
/// ```
pub fn f() -> Option<u32> {
    let msg = \"do not panic!(now)\"; // .unwrap() here neither
    Some(msg.len() as u32)
}
";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src =
            "fn f(v: Option<u32>) -> u32 {\n    v.unwrap_or(0).max(v.unwrap_or_default())\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn std_sync_flagged_outside_wacs_sync() {
        let src = "use std::sync::Mutex;\nfn f() { let _ = std::sync::RwLock::new(1); }\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(1, Rule::StdSync), (2, Rule::StdSync)]
        );
        assert!(rules_hit("crates/wacs-sync/src/mutex.rs", src).is_empty());
    }

    #[test]
    fn std_sync_other_items_are_fine() {
        // Arc is fine everywhere; importing AtomicU64 is inert until a
        // declaration site names it (that's what the counter rule hits).
        let src = "use std::sync::Arc;\nuse std::sync::atomic::AtomicU64;\n";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn bare_atomic_counter_flagged_outside_wacs_obs() {
        let src = "\
use std::sync::atomic::AtomicU64;
struct Stats {
    hits: AtomicU64,
}
fn fresh() -> AtomicU64 {
    AtomicU64::new(0)
}
";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![
                (3, Rule::BareAtomicCounter),
                (5, Rule::BareAtomicCounter),
                (6, Rule::BareAtomicCounter)
            ]
        );
        // The registry crate implements its instruments *on* atomics.
        assert!(rules_hit("crates/wacs-obs/src/registry.rs", src).is_empty());
    }

    #[test]
    fn bare_atomic_counter_allows_marked_non_metric_uses() {
        // ID generators and the like may stay atomic when marked.
        let src = "\
struct G {
    next_id: AtomicU64, // lint:allow(bare-atomic-counter)
}
";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
        // Test code may fabricate atomics freely.
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = AtomicU64::new(0); }\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", test).is_empty());
    }

    #[test]
    fn port_literals_flagged_outside_definition_sites() {
        let src = "fn f() -> u16 { 5678 }\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(1, Rule::PortLiteral)]
        );
        assert!(rules_hit("crates/firewall/src/lib.rs", src).is_empty());
        // Substrings of larger numbers don't count.
        assert!(rules_hit("crates/demo/src/lib.rs", "const X: u32 = 15678;\n").is_empty());
        assert!(rules_hit("crates/demo/src/lib.rs", "const X: f64 = 5678.5;\n").is_empty());
    }

    #[test]
    fn todo_and_unimplemented_flagged_even_in_tests() {
        let src =
            "#[cfg(test)]\nmod tests {\n    fn t() { todo!() }\n}\nfn g() { unimplemented!() }\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(3, Rule::Todo), (5, Rule::Todo)]
        );
    }

    #[test]
    fn lint_allow_suppresses_named_rule_only() {
        let src = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(unwrap-panic)\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
        let wrong = "fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(std-sync)\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", wrong),
            vec![(2, Rule::UnwrapPanic)]
        );
    }

    #[test]
    fn lint_allow_works_from_an_adjacent_comment_line() {
        // rustfmt floats long trailing comments onto their own line;
        // a comment-only marker directly above or below still counts.
        let above =
            "fn f(v: Option<u32>) -> u32 {\n    // lint:allow(unwrap-panic)\n    v.unwrap()\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", above).is_empty());
        let below =
            "fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n    // lint:allow(unwrap-panic)\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", below).is_empty());
        // A marker on a *code* line above must not bleed downward.
        let code_above =
            "fn f(a: Option<u32>, b: Option<u32>) -> u32 {\n    a.unwrap() // lint:allow(unwrap-panic)\n    + b.unwrap()\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", code_above),
            vec![(3, Rule::UnwrapPanic)]
        );
    }

    #[test]
    fn require_unwrap_or_flagged_outside_tests() {
        // The PR-3 bug class: a required wire field defaulted away.
        let src = "fn f(r: &Record) -> u64 {\n    r.require_u64(\"count\").unwrap_or(0)\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(2, Rule::RequireUnwrapOr)]
        );
        // ...including defaulted-by-type.
        let dflt =
            "fn f(r: &Record) -> u64 {\n    r.require_u64(\"count\").unwrap_or_default()\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", dflt),
            vec![(2, Rule::RequireUnwrapOr)]
        );
        // Handling the error is the fix, and is clean.
        let ok = "fn f(r: &Record) -> io::Result<u64> {\n    Ok(r.require_u64(\"count\")?)\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", ok).is_empty());
        // Test code may fabricate defaults freely.
        let test = "#[cfg(test)]\nmod tests {\n    fn t(r: &Record) -> u64 { r.require_u64(\"count\").unwrap_or(0) }\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", test).is_empty());
    }

    #[test]
    fn deadline_io_flags_blocking_calls_without_timeout_evidence() {
        let src = "\
fn f(s: &mut TcpStream) -> io::Result<()> {
    let mut buf = [0u8; 4];
    s.read_exact(&mut buf)?;
    Ok(())
}
fn g(l: &TcpListener) {
    let _ = l.accept();
}
";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(3, Rule::DeadlineIo), (7, Rule::DeadlineIo)]
        );
    }

    #[test]
    fn deadline_io_accepts_timeout_evidence_or_marker() {
        // A file that sets a read timeout anywhere has a deadline story.
        let with_timeout = "\
fn f(s: &mut TcpStream) -> io::Result<()> {
    s.set_read_timeout(Some(TIMEOUT))?;
    let mut buf = [0u8; 4];
    s.read_exact(&mut buf)?;
    Ok(())
}
";
        assert!(rules_hit("crates/demo/src/lib.rs", with_timeout).is_empty());
        // Deliberate blocking sites are marked.
        let marked = "\
fn f(s: &mut TcpStream) -> io::Result<()> {
    let mut buf = [0u8; 4];
    s.read_exact(&mut buf)?; // lint:allow(deadline-io)
    Ok(())
}
";
        assert!(rules_hit("crates/demo/src/lib.rs", marked).is_empty());
        // Test code may block freely.
        let test = "#[cfg(test)]\nmod tests {\n    fn t(s: &mut TcpStream) { s.read_exact(&mut [0; 4]).unwrap(); }\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", test).is_empty());
    }

    #[test]
    fn hot_path_alloc_flagged_only_in_data_plane_files() {
        let src = "fn f(chunk: usize) {\n    let _buf = vec![0u8; chunk];\n}\n";
        for path in super::HOT_PATH_FILES {
            assert_eq!(
                rules_hit(path, src),
                vec![(2, Rule::HotPathAlloc)],
                "{path}"
            );
        }
        // Everywhere else a zeroed vec is unremarkable.
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn hot_path_alloc_escape_hatch_and_test_exemption() {
        let marked =
            "fn f(n: usize) {\n    let _b = vec![0u8; n]; // lint:allow(hot-path-alloc)\n}\n";
        assert!(rules_hit("crates/nexus-proxy/src/pool.rs", marked).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = vec![0u8; 16]; }\n}\n";
        assert!(rules_hit("crates/nexus-proxy/src/pump.rs", test).is_empty());
    }

    #[test]
    fn bare_sleep_flagged_in_library_code() {
        let src = "fn f() {\n    std::thread::sleep(Duration::from_millis(5));\n}\nfn g() {\n    thread::sleep(TICK);\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(2, Rule::BareSleep), (5, Rule::BareSleep)]
        );
        // The bench harness paces load generators with sleeps on purpose.
        assert!(rules_hit("crates/bench/src/bin/proxy_bench.rs", src).is_empty());
    }

    #[test]
    fn bare_sleep_escape_hatch_and_test_exemption() {
        let marked = "fn f() {\n    thread::sleep(left.min(CLAMP)); // lint:allow(bare-sleep)\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", marked).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    fn t() { thread::sleep(Duration::from_millis(1)); }\n}\n";
        assert!(rules_hit("crates/demo/src/lib.rs", test).is_empty());
        // A different rule's marker does not excuse the sleep.
        let wrong = "fn f() {\n    thread::sleep(TICK); // lint:allow(deadline-io)\n}\n";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", wrong),
            vec![(2, Rule::BareSleep)]
        );
    }

    #[test]
    fn macro_name_must_match_exactly() {
        let src = "fn f() { dont_panic!(); my_todo!(); }\n";
        assert!(rules_hit("crates/demo/src/lib.rs", src).is_empty());
    }

    #[test]
    fn nested_test_mod_unwinds_correctly() {
        // After the test mod closes, violations count again.
        let src = "\
#[cfg(test)]
mod tests {
    fn t() { x().unwrap(); }
}

pub fn late(v: Option<u32>) -> u32 {
    v.unwrap()
}
";
        assert_eq!(
            rules_hit("crates/demo/src/lib.rs", src),
            vec![(7, Rule::UnwrapPanic)]
        );
    }
}
