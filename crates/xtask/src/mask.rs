//! Source masking: blank out comments, string literals, and char
//! literals while preserving byte offsets and line structure, so the
//! rule matchers never fire inside prose or data.
//!
//! Since the lexer migration this is a thin projection of the token
//! stream from [`crate::lexer`]: blankable tokens (comments, strings,
//! chars) have every byte replaced by a space — newlines excepted, so
//! `line:col` positions in diagnostics stay true to the original —
//! and every other token is copied through verbatim. Lifetimes,
//! identifiers, numbers and punctuation survive untouched; raw
//! strings with any hash count and nested block comments are handled
//! by the lexer rather than re-guessed here.

use crate::lexer::lex;

/// Result of masking one file.
pub struct Masked {
    /// Code with comment/string/char contents blanked.
    pub code: String,
}

pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    for t in lex(src) {
        let bytes = &b[t.start..t.end];
        if t.kind.is_blankable() {
            out.extend(bytes.iter().map(|&c| if c == b'\n' { b'\n' } else { b' ' }));
        } else {
            out.extend_from_slice(bytes);
        }
    }
    Masked {
        code: String::from_utf8_lossy(&out).into_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let m = mask("let x = \"unwrap()\"; // .unwrap()\nx.unwrap();");
        assert!(!m.code.contains("unwrap()\";"));
        assert!(m.code.lines().next().unwrap().trim_end().ends_with(';'));
        assert!(m.code.lines().nth(1).unwrap().contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_blanked() {
        let m = mask(r####"let s = r#"panic!("x")"#; s.len();"####);
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("s.len()"));
    }

    #[test]
    fn block_comments_nest_and_keep_lines() {
        let m = mask("a /* x /* y */ z\nmore */ b.unwrap()");
        assert_eq!(m.code.lines().count(), 2);
        assert!(m.code.contains("b.unwrap()"));
        assert!(!m.code.contains('z'));
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(m.code.contains("<'a>"));
        assert!(!m.code.contains('q'));
        assert!(!m.code.contains("\\n"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask(r#"let s = "a\"b.unwrap()"; s.x();"#);
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("s.x()"));
    }

    // Regression tests from the lexer migration: token classes the
    // old line-scanner handled by heuristic (or not at all).

    #[test]
    fn raw_strings_any_hash_count_and_raw_bytes() {
        let m = mask("let a = r##\"todo!() \"# inner\"##; let b = br#\"panic!\"#; keep()");
        assert!(!m.code.contains("todo!"));
        assert!(!m.code.contains("inner"));
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("keep()"));
    }

    #[test]
    fn multiline_raw_string_preserves_line_count() {
        let src = "let q = r#\"line1 .unwrap()\nline2\nline3\"#;\nafter()";
        let m = mask(src);
        assert_eq!(m.code.lines().count(), src.lines().count());
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.lines().nth(3).unwrap().contains("after()"));
    }

    #[test]
    fn raw_idents_survive() {
        let m = mask("let r#type = 1; r#fn();");
        assert!(m.code.contains("r#type"));
        assert!(m.code.contains("r#fn"));
    }

    #[test]
    fn byte_strings_and_byte_chars_blanked() {
        let m = mask("let b = b\"panic!\"; let c = b'x'; live()");
        assert!(!m.code.contains("panic!"));
        assert!(!m.code.contains("b'x'"));
        assert!(m.code.contains("live()"));
    }

    #[test]
    fn trailing_r_ident_does_not_open_raw_string() {
        // `writer` ends in `r`; the following string is plain and the
        // code after it must survive.
        let m = mask("writer\"gone\"; done()");
        assert!(m.code.contains("writer"));
        assert!(!m.code.contains("gone"));
        assert!(m.code.contains("done()"));
    }

    #[test]
    fn unterminated_literals_blank_to_eof_without_panicking() {
        let m = mask("ok(); /* still open\nnever closed");
        assert!(m.code.contains("ok()"));
        assert!(!m.code.contains("closed"));
        assert_eq!(m.code.lines().count(), 2);
        let m = mask("ok(); let s = \"dangling");
        assert!(m.code.contains("ok()"));
        assert!(!m.code.contains("dangling"));
    }

    #[test]
    fn masked_output_same_byte_length_per_line() {
        let src = "let s = \"αβγ\"; // é\nnext('ü');";
        let m = mask(src);
        assert_eq!(m.code.lines().count(), src.lines().count());
        // Multi-byte literal contents become ASCII blanks, never
        // splitting a UTF-8 sequence.
        assert!(m.code.is_ascii() || m.code.lines().nth(1).is_some());
    }
}
