//! Source masking: blank out the contents of comments, string
//! literals, and char literals while preserving byte offsets and line
//! structure, so the rule matchers never fire inside prose or data.
//!
//! This is a lexer-level pass, not a parser: it understands `//` and
//! (nested) `/* */` comments, `"…"` strings with escapes, raw strings
//! `r"…"`/`r#"…"#` with any hash count, byte/raw-byte strings, char
//! literals, and distinguishes lifetimes (`'a`) from char literals
//! (`'a'`). Masked bytes become spaces; newlines survive everywhere so
//! `line:col` positions in diagnostics stay true to the original.

/// Result of masking one file.
pub struct Masked {
    /// Code with comment/string/char contents blanked.
    pub code: String,
}

#[derive(PartialEq)]
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

pub fn mask(src: &str) -> Masked {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut st = St::Code;
    let mut i = 0usize;

    macro_rules! put {
        ($c:expr) => {
            out.push($c)
        };
    }

    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    st = St::LineComment;
                    put!(b' ');
                    put!(b' ');
                    i += 2;
                    continue;
                }
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(1);
                    put!(b' ');
                    put!(b' ');
                    i += 2;
                    continue;
                }
                if c == b'"' {
                    st = St::Str;
                    put!(b'"');
                    i += 1;
                    continue;
                }
                // Raw strings: r"…", r#"…"#, and byte-raw br#"…"#.
                if (c == b'r' || (c == b'b' && b.get(i + 1) == Some(&b'r'))) && !prev_is_ident(&out)
                {
                    let start = if c == b'b' { i + 2 } else { i + 1 };
                    let mut hashes = 0usize;
                    while b.get(start + hashes) == Some(&b'#') {
                        hashes += 1;
                    }
                    if b.get(start + hashes) == Some(&b'"') {
                        out.extend(std::iter::repeat_n(b' ', start + hashes - i + 1));
                        i = start + hashes + 1;
                        st = St::RawStr(hashes as u32);
                        continue;
                    }
                }
                if c == b'\'' {
                    // Lifetime or char literal? A char literal closes
                    // with a quote within a few bytes; a lifetime does
                    // not. Escaped chars ('\n', '\u{..}') are literals.
                    if b.get(i + 1) == Some(&b'\\') {
                        st = St::Char;
                        put!(b' ');
                        i += 1;
                        continue;
                    }
                    // 'x' style: quote, one UTF-8 scalar, quote.
                    let mut j = i + 1;
                    if j < b.len() {
                        let w = utf8_width(b[j]);
                        j += w;
                        if b.get(j) == Some(&b'\'') {
                            out.extend(std::iter::repeat_n(b' ', j - i + 1));
                            i = j + 1;
                            continue;
                        }
                    }
                    // Lifetime: keep the tick, it cannot confuse rules.
                    put!(b'\'');
                    i += 1;
                    continue;
                }
                put!(c);
                i += 1;
            }
            St::LineComment => {
                if c == b'\n' {
                    st = St::Code;
                    put!(b'\n');
                } else {
                    put!(b' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    st = St::BlockComment(depth + 1);
                    put!(b' ');
                    put!(b' ');
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    put!(b' ');
                    put!(b' ');
                    i += 2;
                } else {
                    put!(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::Str => {
                if c == b'\\' && i + 1 < b.len() {
                    put!(b' ');
                    put!(b' ');
                    if b[i + 1] == b'\n' {
                        out.pop();
                        put!(b'\n');
                    }
                    i += 2;
                } else if c == b'"' {
                    st = St::Code;
                    put!(b'"');
                    i += 1;
                } else {
                    put!(if c == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == b'"' {
                    let h = hashes as usize;
                    if b[i + 1..].len() >= h && b[i + 1..i + 1 + h].iter().all(|&x| x == b'#') {
                        out.extend(std::iter::repeat_n(b' ', h + 1));
                        i += 1 + h;
                        st = St::Code;
                        continue;
                    }
                }
                put!(if c == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            St::Char => {
                if c == b'\\' && i + 1 < b.len() {
                    put!(b' ');
                    put!(b' ');
                    i += 2;
                } else if c == b'\'' {
                    st = St::Code;
                    put!(b' ');
                    i += 1;
                } else {
                    put!(b' ');
                    i += 1;
                }
            }
        }
    }
    Masked {
        code: String::from_utf8_lossy(&out).into_owned(),
    }
}

/// Does the masked output so far end in an identifier byte? Guards the
/// raw-string detector against identifiers ending in `r` (e.g. `var"`
/// cannot happen, but `for` / `writer` followed by `"` in macros can).
fn prev_is_ident(out: &[u8]) -> bool {
    out.last()
        .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_')
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_blanked() {
        let m = mask("let x = \"unwrap()\"; // .unwrap()\nx.unwrap();");
        assert!(!m.code.contains("unwrap()\";"));
        assert!(m.code.lines().next().unwrap().trim_end().ends_with(';'));
        assert!(m.code.lines().nth(1).unwrap().contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_blanked() {
        let m = mask(r####"let s = r#"panic!("x")"#; s.len();"####);
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("s.len()"));
    }

    #[test]
    fn block_comments_nest_and_keep_lines() {
        let m = mask("a /* x /* y */ z\nmore */ b.unwrap()");
        assert_eq!(m.code.lines().count(), 2);
        assert!(m.code.contains("b.unwrap()"));
        assert!(!m.code.contains('z'));
    }

    #[test]
    fn lifetimes_survive_char_literals_blank() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; }");
        assert!(m.code.contains("<'a>"));
        assert!(!m.code.contains('q'));
        assert!(!m.code.contains("\\n"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let m = mask(r#"let s = "a\"b.unwrap()"; s.x();"#);
        assert!(!m.code.contains("unwrap"));
        assert!(m.code.contains("s.x()"));
    }
}
