//! Source discovery: every `.rs` file under `crates/*/src` and the
//! root `src/` — the library surface the conventions govern.
//! Integration tests, benches, and examples are compiled with the
//! crates but live outside `src/`; they are test code by definition
//! and exempt from the panic rules, so they are not walked.

use std::path::{Path, PathBuf};

pub fn library_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            walk_rs(&dir.join("src"), &mut out);
        }
    }
    walk_rs(&root.join("src"), &mut out);
    out.sort();
    out
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Against the real workspace (xtask always runs from within it):
    /// the walk finds this very file and stays inside `src` dirs.
    #[test]
    fn finds_workspace_sources() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let files = library_sources(root);
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/xtask/src/scan.rs")));
        assert!(files
            .iter()
            .any(|p| p.ends_with("crates/nexus/src/ports.rs")));
        assert!(files.iter().all(|p| !p.components().any(|c| {
            let s = c.as_os_str();
            s == "tests" || s == "benches" || s == "examples"
        })));
    }
}
