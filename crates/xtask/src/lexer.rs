//! A minimal, total Rust lexer.
//!
//! This is the foundation of the analyzer: instead of guessing at
//! string/comment boundaries line by line, every rule now runs over a
//! token stream produced here. The lexer is *total* — any byte
//! sequence lexes without panicking, unterminated literals are
//! classified with `terminated: false` and consume to end of input —
//! and it is a *partition*: tokens tile the source contiguously, so
//! `src[t.start..t.end]` concatenated over all tokens reproduces the
//! file byte-for-byte (pinned by the workspace round-trip test).
//!
//! Handled token classes, matching everything that appears in this
//! workspace: whitespace, line comments, nested block comments, plain
//! and byte strings with escapes, raw and raw-byte strings with any
//! hash count, char and byte-char literals, lifetimes (disambiguated
//! from char literals), raw identifiers (`r#fn`), identifiers
//! (including non-ASCII), numbers (underscores, radix prefixes,
//! floats, exponents, suffixes), and single-byte punctuation.

/// Token classification. Literal/comment kinds carry a `terminated`
/// flag so callers can detect truncated input instead of silently
/// treating it as code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of ASCII whitespace (newlines included).
    Whitespace,
    /// `// …` up to but not including the newline.
    LineComment,
    /// `/* … */`, nesting tracked.
    BlockComment { terminated: bool },
    /// Identifier or keyword (also non-ASCII identifier bytes).
    Ident,
    /// Raw identifier: `r#name`.
    RawIdent,
    /// `'name` with no closing quote.
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'`.
    Char { terminated: bool },
    /// `"…"` or `b"…"` with escapes.
    Str { terminated: bool },
    /// `r"…"`, `r#"…"#`, `br##"…"##`; `hashes` is the delimiter count.
    RawStr { terminated: bool, hashes: u8 },
    /// Numeric literal including suffix (`0xff_u32`, `1.5e-3`).
    Num,
    /// A single punctuation byte (`.`, `:`, `{`, …).
    Punct,
}

impl TokenKind {
    /// Comment or literal whose bytes are prose/data, not code.
    pub fn is_blankable(self) -> bool {
        matches!(
            self,
            TokenKind::LineComment
                | TokenKind::BlockComment { .. }
                | TokenKind::Char { .. }
                | TokenKind::Str { .. }
                | TokenKind::RawStr { .. }
        )
    }

    /// Whitespace or comment — skipped by structural matchers.
    pub fn is_trivia(self) -> bool {
        matches!(
            self,
            TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment { .. }
        )
    }
}

/// One token: a byte span of the source plus its class and the
/// 1-based line its first byte sits on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Lex `src` into a contiguous token stream covering every byte.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let start = i;
        let (kind, end) = scan_token(b, i);
        // Defensive: a scanner must always make progress.
        let end = end.max(i + 1).min(b.len());
        toks.push(Token {
            kind,
            start,
            end,
            line,
        });
        line += b[start..end].iter().filter(|&&c| c == b'\n').count();
        i = end;
    }
    toks
}

/// For string-like tokens, the literal's content with delimiters
/// (quotes, hashes, `b`/`r` prefixes) stripped. `None` for other
/// kinds or unterminated literals.
pub fn string_content<'a>(src: &'a str, t: &Token) -> Option<&'a str> {
    let text = t.text(src);
    match t.kind {
        TokenKind::Str { terminated: true } => {
            let inner = text.strip_prefix('b').unwrap_or(text);
            inner.strip_prefix('"')?.strip_suffix('"')
        }
        TokenKind::RawStr {
            terminated: true,
            hashes,
        } => {
            let inner = text.strip_prefix('b').unwrap_or(text);
            let inner = inner.strip_prefix('r')?;
            let h = hashes as usize;
            let open = inner.get(h..)?.strip_prefix('"')?;
            open.get(..open.len().checked_sub(h + 1)?)
        }
        _ => None,
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Scan one token starting at `i`; returns its kind and end offset.
fn scan_token(b: &[u8], i: usize) -> (TokenKind, usize) {
    let c = b[i];
    if c.is_ascii_whitespace() {
        let mut j = i + 1;
        while j < b.len() && b[j].is_ascii_whitespace() {
            j += 1;
        }
        return (TokenKind::Whitespace, j);
    }
    if c == b'/' && b.get(i + 1) == Some(&b'/') {
        let mut j = i + 2;
        while j < b.len() && b[j] != b'\n' {
            j += 1;
        }
        return (TokenKind::LineComment, j);
    }
    if c == b'/' && b.get(i + 1) == Some(&b'*') {
        return scan_block_comment(b, i);
    }
    if c == b'"' {
        let (end, terminated) = scan_str(b, i + 1);
        return (TokenKind::Str { terminated }, end);
    }
    if c == b'\'' {
        return scan_quote(b, i);
    }
    if c == b'b' {
        if let Some(found) = scan_b_prefix(b, i) {
            return found;
        }
    }
    if c == b'r' {
        if let Some(found) = scan_r_prefix(b, i, i + 1) {
            return found;
        }
    }
    if is_ident_start(c) {
        return (TokenKind::Ident, ident_end(b, i + 1));
    }
    if c.is_ascii_digit() {
        return (TokenKind::Num, num_end(b, i));
    }
    (TokenKind::Punct, i + 1)
}

fn ident_end(b: &[u8], mut j: usize) -> usize {
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    j
}

fn scan_block_comment(b: &[u8], i: usize) -> (TokenKind, usize) {
    let mut depth = 1u32;
    let mut j = i + 2;
    while j < b.len() {
        if b[j] == b'/' && b.get(j + 1) == Some(&b'*') {
            depth += 1;
            j += 2;
        } else if b[j] == b'*' && b.get(j + 1) == Some(&b'/') {
            depth -= 1;
            j += 2;
            if depth == 0 {
                return (TokenKind::BlockComment { terminated: true }, j);
            }
        } else {
            j += 1;
        }
    }
    (TokenKind::BlockComment { terminated: false }, j)
}

/// Body of a `"…"` string starting *after* the opening quote.
fn scan_str(b: &[u8], mut j: usize) -> (usize, bool) {
    while j < b.len() {
        match b[j] {
            b'\\' if j + 1 < b.len() => j += 2,
            b'"' => return (j + 1, true),
            _ => j += 1,
        }
    }
    (j, false)
}

/// Body of a char literal starting *after* the opening quote; a bare
/// newline terminates the scan (chars cannot span lines).
fn scan_char_body(b: &[u8], mut j: usize) -> (usize, bool) {
    while j < b.len() {
        match b[j] {
            b'\\' if j + 1 < b.len() => j += 2,
            b'\'' => return (j + 1, true),
            b'\n' => return (j, false),
            _ => j += 1,
        }
    }
    (j, false)
}

/// `'` — char literal, lifetime, or stray quote.
fn scan_quote(b: &[u8], i: usize) -> (TokenKind, usize) {
    match b.get(i + 1) {
        // Escaped char: definitely a literal ('\n', '\u{…}').
        Some(&b'\\') => {
            let (end, terminated) = scan_char_body(b, i + 1);
            (TokenKind::Char { terminated }, end)
        }
        Some(&n) => {
            // One UTF-8 scalar directly followed by a closing quote is
            // a char literal ('x', '€', '_'); otherwise an ident-start
            // byte opens a lifetime ('a, 'static, '_).
            let w = utf8_width(n);
            if b.get(i + 1 + w) == Some(&b'\'') && n != b'\'' {
                (TokenKind::Char { terminated: true }, i + 2 + w)
            } else if is_ident_start(n) {
                (TokenKind::Lifetime, ident_end(b, i + 1))
            } else {
                (TokenKind::Punct, i + 1)
            }
        }
        None => (TokenKind::Punct, i + 1),
    }
}

/// At a `b`: byte string `b"…"`, byte char `b'…'`, raw byte string
/// `br#"…"#` — or `None` (plain identifier starting with `b`).
fn scan_b_prefix(b: &[u8], i: usize) -> Option<(TokenKind, usize)> {
    match b.get(i + 1) {
        Some(&b'"') => {
            let (end, terminated) = scan_str(b, i + 2);
            Some((TokenKind::Str { terminated }, end))
        }
        Some(&b'\'') => {
            let (end, terminated) = scan_char_body(b, i + 2);
            Some((TokenKind::Char { terminated }, end))
        }
        Some(&b'r') => scan_r_prefix(b, i, i + 2),
        _ => None,
    }
}

/// At an `r` (possibly after a `b` at `start`): raw string with any
/// hash count, raw identifier — or `None` (plain identifier).
fn scan_r_prefix(b: &[u8], start: usize, after_r: usize) -> Option<(TokenKind, usize)> {
    let mut h = 0usize;
    while b.get(after_r + h) == Some(&b'#') {
        h += 1;
    }
    if b.get(after_r + h) == Some(&b'"') {
        let (end, terminated) = raw_str_end(b, after_r + h + 1, h);
        return Some((
            TokenKind::RawStr {
                terminated,
                hashes: h.min(255) as u8,
            },
            end,
        ));
    }
    // Raw identifier: exactly `r#` then an ident (not from `br#`).
    if start == after_r - 1 && h == 1 && b.get(after_r + 1).copied().is_some_and(is_ident_start) {
        return Some((TokenKind::RawIdent, ident_end(b, after_r + 2)));
    }
    None
}

/// Body of a raw string after the opening quote: find `"` + `hashes`
/// `#`s.
fn raw_str_end(b: &[u8], mut j: usize, hashes: usize) -> (usize, bool) {
    while j < b.len() {
        if b[j] == b'"'
            && b.len() > j + hashes
            && b[j + 1..j + 1 + hashes].iter().all(|&c| c == b'#')
        {
            return (j + 1 + hashes, true);
        }
        j += 1;
    }
    (j, false)
}

/// Numeric literal: leading digit blob (with `_`, radix prefix,
/// suffix letters), optional `.fraction`, optional exponent whose
/// sign is only consumed outside radix-prefixed literals (so `0x1e-5`
/// is `0x1e`, `-`, `5`).
fn num_end(b: &[u8], start: usize) -> usize {
    let radix_prefixed =
        b[start] == b'0' && matches!(b.get(start + 1), Some(&b'x' | &b'o' | &b'b'));
    let mut j = digit_blob_end(b, start + 1, radix_prefixed);
    if j < b.len() && b[j] == b'.' && b.get(j + 1).copied().is_some_and(|c| c.is_ascii_digit()) {
        j = digit_blob_end(b, j + 1, radix_prefixed);
    }
    j
}

fn digit_blob_end(b: &[u8], mut j: usize, radix_prefixed: bool) -> usize {
    while j < b.len() {
        let c = b[j];
        let exponent_sign = (c == b'+' || c == b'-')
            && !radix_prefixed
            && j > 0
            && matches!(b[j - 1], b'e' | b'E')
            && b.get(j + 1).copied().is_some_and(|d| d.is_ascii_digit());
        if is_ident_continue(c) || exponent_sign {
            j += 1;
        } else {
            break;
        }
    }
    j
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn roundtrip(src: &str) {
        let toks = lex(src);
        let mut pos = 0usize;
        for t in &toks {
            assert_eq!(t.start, pos, "tokens must tile contiguously");
            assert!(t.end > t.start, "empty token");
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens must cover the whole source");
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn idents_puncts_numbers() {
        let got = kinds("let x_1 = 42;");
        assert_eq!(got[0], (TokenKind::Ident, "let".into()));
        assert_eq!(got[2], (TokenKind::Ident, "x_1".into()));
        assert_eq!(got[6], (TokenKind::Num, "42".into()));
        assert_eq!(got[7], (TokenKind::Punct, ";".into()));
        roundtrip("let x_1 = 42;");
    }

    #[test]
    fn number_shapes() {
        for (src, tok) in [
            ("0xff_u32 ", "0xff_u32"),
            ("1_000_000;", "1_000_000"),
            ("1.5e-3 ", "1.5e-3"),
            ("2E+10;", "2E+10"),
            ("0b1010_1111u8 ", "0b1010_1111u8"),
            ("3.14f64 ", "3.14f64"),
            ("7usize ", "7usize"),
        ] {
            let got = kinds(src);
            assert_eq!(got[0], (TokenKind::Num, tok.into()), "{src}");
            roundtrip(src);
        }
        // `0x1e-5` must NOT eat the minus as an exponent sign.
        let got = kinds("0x1e-5");
        assert_eq!(got[0], (TokenKind::Num, "0x1e".into()));
        assert_eq!(got[1], (TokenKind::Punct, "-".into()));
        assert_eq!(got[2], (TokenKind::Num, "5".into()));
        // Ranges and method calls don't swallow the dot.
        let got = kinds("1..3");
        assert_eq!(got[0], (TokenKind::Num, "1".into()));
        let got = kinds("1.max(2)");
        assert_eq!(got[0], (TokenKind::Num, "1".into()));
        assert_eq!(got[1], (TokenKind::Punct, ".".into()));
    }

    #[test]
    fn strings_with_escapes_and_newlines() {
        let src = "let s = \"a\\\"b\\n\\\n  c\"; t()";
        let got = kinds(src);
        assert!(matches!(got[6].0, TokenKind::Str { terminated: true }));
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Ident && t == "t"));
        roundtrip(src);
        let unterminated = "let s = \"abc";
        let got = kinds(unterminated);
        assert!(matches!(
            got.last().map(|x| x.0),
            Some(TokenKind::Str { terminated: false })
        ));
        roundtrip(unterminated);
    }

    #[test]
    fn raw_strings_every_hash_count() {
        for src in [
            "r\"plain\\\"",
            "r#\"one \" hash\"#",
            "r##\"two \"# hashes\"##",
            "br#\"raw bytes\"#",
        ] {
            let got = kinds(src);
            assert!(
                matches!(
                    got[0].0,
                    TokenKind::RawStr {
                        terminated: true,
                        ..
                    }
                ),
                "{src}: {:?}",
                got[0]
            );
            assert_eq!(got.len(), 1, "{src}");
            roundtrip(src);
        }
        let t = lex("r#\"x\"#");
        assert_eq!(string_content("r#\"x\"#", &t[0]), Some("x"));
        let t2 = lex("br##\"y\"##");
        assert_eq!(string_content("br##\"y\"##", &t2[0]), Some("y"));
        let t3 = lex("\"plain\"");
        assert_eq!(string_content("\"plain\"", &t3[0]), Some("plain"));
    }

    #[test]
    fn raw_string_not_confused_with_trailing_r_ident() {
        // `writer` ends in `r` but is one ident; the string after it
        // is a plain string.
        let src = "writer\"x\"";
        let got = kinds(src);
        assert_eq!(got[0], (TokenKind::Ident, "writer".into()));
        assert!(matches!(got[1].0, TokenKind::Str { terminated: true }));
        // And `br`/`r` as complete identifiers stay identifiers.
        let got = kinds("br + r");
        assert_eq!(got[0], (TokenKind::Ident, "br".into()));
        assert_eq!(got[4], (TokenKind::Ident, "r".into()));
    }

    #[test]
    fn raw_idents() {
        let got = kinds("let r#fn = r#type;");
        assert_eq!(got[2], (TokenKind::RawIdent, "r#fn".into()));
        assert_eq!(got[6], (TokenKind::RawIdent, "r#type".into()));
        roundtrip("let r#fn = r#type;");
    }

    #[test]
    fn chars_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'q'; let n = '\\n'; let u = '_'; }";
        let got = kinds(src);
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = got
            .iter()
            .filter(|(k, _)| matches!(k, TokenKind::Char { .. }))
            .collect();
        assert_eq!(chars.len(), 3);
        roundtrip(src);
        // 'static and '_ are lifetimes; b'x' is a char.
        let got = kinds("&'static str; let u = &'_ u8; b'z'");
        assert!(got.contains(&(TokenKind::Lifetime, "'static".into())));
        assert!(got.contains(&(TokenKind::Lifetime, "'_".into())));
        assert!(got.contains(&(TokenKind::Char { terminated: true }, "b'z'".into())));
    }

    #[test]
    fn comments_line_and_nested_block() {
        let src = "a // tail /* not nested\nb /* x /* y */ z */ c /* open";
        let got = kinds(src);
        assert!(got.contains(&(TokenKind::LineComment, "// tail /* not nested".into())));
        assert!(got.contains(&(
            TokenKind::BlockComment { terminated: true },
            "/* x /* y */ z */".into()
        )));
        assert!(got.contains(&(
            TokenKind::BlockComment { terminated: false },
            "/* open".into()
        )));
        roundtrip(src);
    }

    #[test]
    fn line_numbers_are_one_based_and_track_multiline_tokens() {
        let src = "a\n\"x\ny\"\nb";
        let toks: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .collect();
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // the string opens on line 2
        assert_eq!(toks[2].line, 4); // b, after the 2-line string
    }

    #[test]
    fn non_ascii_idents_and_strings() {
        let src = "let grüße = \"héllo\"; 'é'";
        roundtrip(src);
        let got = kinds(src);
        assert!(got.contains(&(TokenKind::Ident, "grüße".into())));
        assert!(got.contains(&(TokenKind::Char { terminated: true }, "'é'".into())));
    }

    #[test]
    fn degenerate_inputs_are_total() {
        for src in ["'", "''", "'\\", "\"", "r#", "b", "br#", "/*", "//", "0x"] {
            roundtrip(src);
        }
    }

    /// The satellite self-test: every `.rs` file in the workspace
    /// (library sources *and* tests/benches) must tokenize and
    /// reconstruct byte-identically, with every literal terminated.
    #[test]
    fn workspace_round_trip() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root");
        let mut files = Vec::new();
        walk_all_rs(root, &mut files);
        assert!(files.len() > 50, "workspace walk found {}", files.len());
        for path in files {
            let src = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
            let toks = lex(&src);
            let mut pos = 0usize;
            for t in &toks {
                assert_eq!(t.start, pos, "{}: gap at byte {pos}", path.display());
                pos = t.end;
                let terminated = match t.kind {
                    TokenKind::BlockComment { terminated }
                    | TokenKind::Char { terminated }
                    | TokenKind::Str { terminated }
                    | TokenKind::RawStr { terminated, .. } => terminated,
                    _ => true,
                };
                assert!(
                    terminated,
                    "{}:{}: unterminated {:?}",
                    path.display(),
                    t.line,
                    t.kind
                );
            }
            assert_eq!(pos, src.len(), "{}", path.display());
            let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
            assert_eq!(rebuilt, src, "{}", path.display());
        }
    }

    fn walk_all_rs(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            let name = entry.file_name();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    walk_all_rs(&path, out);
                }
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
}
