//! Span timing on caller-supplied clocks.
//!
//! A span is just a start timestamp in integer nanoseconds. The caller
//! supplies "now" both at `begin` and at `elapsed`, which is what keeps
//! sim-path instrumentation deterministic: under `netsim`, "now" is
//! `SimTime::as_nanos()`, a pure function of the seed. Real-socket
//! paths pass a monotonic-clock reading instead and accept
//! non-determinism there (their snapshots are for humans, not for the
//! replay tests).

/// An open interval measurement; close it with [`Span::elapsed`] or
/// [`crate::Histogram::record_span`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    start_nanos: u64,
}

impl Span {
    /// Start a span at `now_nanos`.
    #[must_use]
    pub fn begin(now_nanos: u64) -> Self {
        Self {
            start_nanos: now_nanos,
        }
    }

    /// The span's start timestamp.
    #[must_use]
    pub fn start_nanos(self) -> u64 {
        self.start_nanos
    }

    /// Nanoseconds since `begin`; saturates at zero if the caller's
    /// clock went backwards (possible only on real-time paths).
    #[must_use]
    pub fn elapsed(self, now_nanos: u64) -> u64 {
        now_nanos.saturating_sub(self.start_nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_a_saturating_difference() {
        let s = Span::begin(1_000);
        assert_eq!(s.elapsed(1_500), 500);
        assert_eq!(s.elapsed(1_000), 0);
        assert_eq!(s.elapsed(999), 0, "backwards clock saturates to 0");
        assert_eq!(s.start_nanos(), 1_000);
    }
}
