//! Minimal hand-rolled JSON emission (the workspace builds offline with
//! no serialization dependency). Only what snapshots and reports need:
//! string escaping and an object/array writer over a `String`.

/// Escape `s` for inclusion inside a JSON string literal (without the
/// surrounding quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let nib = (b >> shift) & 0xF;
                    out.push(char::from_digit(nib, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// A tiny comma-management helper: build one JSON object or array.
/// Nest by writing a sub-writer's output via [`JsonWriter::raw`].
pub struct JsonWriter {
    buf: String,
    first: bool,
    close: char,
}

impl JsonWriter {
    #[must_use]
    pub fn object() -> Self {
        Self {
            buf: String::from("{"),
            first: true,
            close: '}',
        }
    }

    #[must_use]
    pub fn array() -> Self {
        Self {
            buf: String::from("["),
            first: true,
            close: ']',
        }
    }

    fn comma(&mut self) {
        if self.first {
            self.first = false;
        } else {
            self.buf.push(',');
        }
    }

    fn push_key(&mut self, key: &str) {
        self.comma();
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// `"key": <unsigned>` (objects only).
    pub fn field_u64(&mut self, key: &str, v: u64) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// `"key": <signed>` (objects only).
    pub fn field_i64(&mut self, key: &str, v: i64) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(&v.to_string());
        self
    }

    /// `"key": "escaped"` (objects only).
    pub fn field_str(&mut self, key: &str, v: &str) -> &mut Self {
        self.push_key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// `"key": <already-serialized JSON>` (objects only).
    pub fn field_raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.push_key(key);
        self.buf.push_str(json);
        self
    }

    /// Append one already-serialized element (arrays only).
    pub fn raw(&mut self, json: &str) -> &mut Self {
        self.comma();
        self.buf.push_str(json);
        self
    }

    /// Append one unsigned element (arrays only).
    pub fn elem_u64(&mut self, v: u64) -> &mut Self {
        self.comma();
        self.buf.push_str(&v.to_string());
        self
    }

    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push(self.close);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn writer_manages_commas() {
        let mut inner = JsonWriter::array();
        inner.elem_u64(1).elem_u64(2);
        let mut w = JsonWriter::object();
        w.field_str("name", "x")
            .field_u64("n", 7)
            .field_raw("xs", &inner.finish());
        assert_eq!(w.finish(), r#"{"name":"x","n":7,"xs":[1,2]}"#);
    }
}
