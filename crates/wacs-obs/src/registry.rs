//! The named-metric registry and its instrument handles.
//!
//! A [`Registry`] is a cheaply cloneable handle to one shared table of
//! named instruments. `counter`/`gauge`/`histogram` are get-or-create,
//! so independent components that receive clones of the same registry
//! (engine, proxy actors, clients) aggregate into one namespace. Names
//! are dotted paths (`"proxy.outer.connect_req_ns"`); snapshots sort
//! them lexicographically, which is what makes the JSON deterministic.

use crate::hist::HistogramCore;
use crate::snapshot::RegistrySnapshot;
use crate::span::Span;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use wacs_sync::Mutex;

/// A monotonically increasing counter. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed point-in-time value. Cloning shares the cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A shared handle to one log-linear histogram.
#[derive(Clone, Default)]
pub struct Histogram(Arc<Mutex<HistogramCore>>);

impl Histogram {
    pub fn record(&self, v: u64) {
        self.0.lock().record(v);
    }

    /// Close `span` at `now_nanos` and record its duration.
    pub fn record_span(&self, span: Span, now_nanos: u64) {
        self.record(span.elapsed(now_nanos));
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.lock().count()
    }

    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.0.lock().quantile(q)
    }

    #[must_use]
    pub fn snapshot(&self) -> crate::hist::HistogramSnapshot {
        self.0.lock().snapshot()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// The registry handle. `Default` creates a fresh empty table; `Clone`
/// shares it.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.inner.lock();
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge named `name`.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.inner.lock();
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram named `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.inner.lock();
        inner
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Point-in-time copy of every instrument.
    #[must_use]
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_get_or_create_and_shared_across_clones() {
        let reg = Registry::new();
        let other = reg.clone();
        reg.counter("a.hits").add(2);
        other.counter("a.hits").inc();
        assert_eq!(reg.counter("a.hits").get(), 3);

        reg.gauge("a.depth").set(5);
        other.gauge("a.depth").add(-2);
        assert_eq!(reg.gauge("a.depth").get(), 3);

        reg.histogram("a.lat_ns").record(10);
        other.histogram("a.lat_ns").record(30);
        assert_eq!(reg.histogram("a.lat_ns").count(), 2);
    }

    #[test]
    fn snapshot_captures_all_instrument_kinds() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.gauge("g").set(-4);
        let h = reg.histogram("h");
        h.record_span(Span::begin(100), 350);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("c"), Some(&1));
        assert_eq!(snap.gauges.get("g"), Some(&-4));
        assert_eq!(
            snap.histograms.get("h").map(|h| (h.count, h.min)),
            Some((1, 250))
        );
    }
}
