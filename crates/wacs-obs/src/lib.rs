//! # wacs-obs — the workspace observability layer
//!
//! A dependency-free metrics registry shared by the simulator and the
//! real-socket paths: counters, gauges, log-linear histograms with a
//! bounded relative error on quantile estimates, and lightweight span
//! timing. Everything is designed around one invariant:
//!
//! > **Determinism.** Under the simulator, every recorded value derives
//! > from `SimTime` (integer nanoseconds) — never from the wall clock —
//! > so two runs with identical seeds produce byte-identical
//! > [`RegistrySnapshot::to_json`] output.
//!
//! To keep the dependency graph acyclic (`netsim` records into the
//! registry), this crate knows nothing about `netsim`: spans operate on
//! raw `u64` nanosecond timestamps, and callers pass
//! `SimTime::as_nanos()` (sim paths) or a monotonic-clock delta (real
//! paths, where determinism is not expected).
//!
//! ## Shape
//!
//! * [`Registry`] — a cloneable handle to a named-metric table.
//!   `counter`/`gauge`/`histogram` are get-or-create: threading the same
//!   registry through many components aggregates naturally.
//! * [`Histogram`] — log-linear buckets (16 per octave): quantile
//!   estimates are within **6.25%** relative error of a true recorded
//!   value ([`hist::REL_ERROR_DENOM`]). Sums saturate; the top bucket
//!   absorbs arbitrarily large values instead of overflowing.
//! * [`Span`] — `begin(now)` / `elapsed(now)` pairs for service-time
//!   measurement; `Histogram::record_span` closes one.
//! * [`RegistrySnapshot`] — a point-in-time copy. Snapshots merge
//!   commutatively (`merge(a,b) == merge(b,a)`) and serialize to a
//!   stable, integer-only JSON document (BTreeMap key order).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod hist;
pub mod json;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use hist::{HistogramCore, HistogramSnapshot};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use snapshot::RegistrySnapshot;
pub use span::Span;
