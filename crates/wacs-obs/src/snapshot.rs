//! Frozen registry state: commutative merge + deterministic JSON.

use crate::hist::HistogramSnapshot;
use crate::json::JsonWriter;
use std::collections::BTreeMap;

/// A point-in-time copy of a [`crate::Registry`].
///
/// Two guarantees matter to the test suite:
///
/// * **merge is commutative** — `merge(a, b) == merge(b, a)` for every
///   instrument kind (counters add, gauges add, histograms bucket-add);
/// * **`to_json` is deterministic** — BTreeMap key order, integer-only
///   values, no wall-clock timestamps. Identical runs ⇒ byte-identical
///   documents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Fold `other` into `self`: counters and gauges add, histograms
    /// merge bucket-wise.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            let slot = self.counters.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Serialize to a stable JSON document. Histograms carry their raw
    /// sparse buckets plus convenience quantiles (p50/p90/p99, integer
    /// representatives), so readers need no bucket math.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = JsonWriter::object();
        for (k, v) in &self.counters {
            counters.field_u64(k, *v);
        }
        let mut gauges = JsonWriter::object();
        for (k, v) in &self.gauges {
            gauges.field_i64(k, *v);
        }
        let mut hists = JsonWriter::object();
        for (k, h) in &self.histograms {
            hists.field_raw(k, &histogram_json(h));
        }
        let mut root = JsonWriter::object();
        root.field_raw("counters", &counters.finish())
            .field_raw("gauges", &gauges.finish())
            .field_raw("histograms", &hists.finish());
        root.finish()
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    let mut buckets = JsonWriter::array();
    for &(idx, c) in &h.buckets {
        let mut pair = JsonWriter::array();
        pair.elem_u64(u64::from(idx)).elem_u64(c);
        buckets.raw(&pair.finish());
    }
    let mut w = JsonWriter::object();
    w.field_u64("count", h.count)
        .field_u64("sum", h.sum)
        .field_u64("min", h.min)
        .field_u64("max", h.max)
        .field_u64("p50", h.quantile(0.50).unwrap_or(0))
        .field_u64("p90", h.quantile(0.90).unwrap_or(0))
        .field_u64("p99", h.quantile(0.99).unwrap_or(0))
        .field_raw("buckets", &buckets.finish());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample(seed: u64) -> RegistrySnapshot {
        let reg = Registry::new();
        reg.counter("runs").add(seed);
        reg.gauge("depth").set(seed as i64 - 3);
        let h = reg.histogram("lat_ns");
        for i in 0..seed * 10 {
            h.record(i * 97 + seed);
        }
        reg.snapshot()
    }

    #[test]
    fn merge_is_commutative_across_all_kinds() {
        let (a, b) = (sample(3), sample(11));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_json(), ba.to_json());
    }

    #[test]
    fn identical_registries_serialize_byte_identically() {
        assert_eq!(sample(5).to_json(), sample(5).to_json());
        assert_ne!(sample(5).to_json(), sample(6).to_json());
    }

    #[test]
    fn json_shape_is_stable() {
        let reg = Registry::new();
        reg.counter("n").inc();
        reg.histogram("h").record(7);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json,
            concat!(
                r#"{"counters":{"n":1},"gauges":{},"histograms":"#,
                r#"{"h":{"count":1,"sum":7,"min":7,"max":7,"p50":7,"p90":7,"p99":7,"#,
                r#""buckets":[[7,1]]}}}"#
            )
        );
    }
}
