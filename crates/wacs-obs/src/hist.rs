//! Log-linear histogram with a documented relative-error bound.
//!
//! The value axis is split into octaves (powers of two), each octave
//! into [`SUB_BUCKETS`] = 16 linear sub-buckets. A bucket spanning
//! `[lower, lower + width)` always has `lower >= SUB_BUCKETS * width`,
//! so reporting any in-bucket representative misstates a recorded value
//! by at most `width / lower <= 1/16` — the quantile estimates below
//! are within **6.25%** relative error ([`REL_ERROR_DENOM`]).
//!
//! Values `0..16` get exact unit buckets; the scheme is continuous at
//! the boundary. The top bucket covers the largest values representable
//! in `u64`, so nothing overflows — huge outliers saturate into it and
//! the running `sum` saturates rather than wrapping.

/// log2 of the number of linear sub-buckets per octave.
pub const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave (16).
pub const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Quantile estimates err by at most `1/REL_ERROR_DENOM` (6.25%)
/// relative to some truly recorded value.
pub const REL_ERROR_DENOM: u64 = SUB_BUCKETS;
/// Total bucket count: indices `0..16` are exact, then 16 per octave
/// for exponents 4..=63.
pub const NUM_BUCKETS: usize = 976;

/// Bucket index for a value. Exact for `v < 16`, log-linear above.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        // 2^e <= v < 2^(e+1), e >= 4; mantissa in [16, 32).
        let e = 63 - v.leading_zeros();
        let mantissa = v >> (e - SUB_BITS);
        ((e + 1 - SUB_BITS) as usize) * SUB_BUCKETS as usize + (mantissa - SUB_BUCKETS) as usize
    }
}

/// Smallest value mapping to bucket `idx`.
#[must_use]
pub fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        idx as u64
    } else {
        let octave = (idx / SUB_BUCKETS as usize - 1) as u32;
        let offset = (idx % SUB_BUCKETS as usize) as u64;
        (SUB_BUCKETS + offset) << octave
    }
}

/// Width of bucket `idx` (number of distinct values it covers).
#[must_use]
pub fn bucket_width(idx: usize) -> u64 {
    if idx < SUB_BUCKETS as usize {
        1
    } else {
        1u64 << (idx / SUB_BUCKETS as usize - 1)
    }
}

/// The value reported for a hit in bucket `idx`: the bucket midpoint
/// (rounded down), which keeps single-unit buckets exact.
#[must_use]
pub fn bucket_representative(idx: usize) -> u64 {
    let lower = bucket_lower(idx);
    lower.saturating_add((bucket_width(idx) - 1) / 2)
}

/// The mutable histogram state. Not thread-safe by itself — the
/// [`crate::Histogram`] handle wraps it in a lock.
#[derive(Clone)]
pub struct HistogramCore {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramCore {
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, v: u64) {
        if let Some(slot) = self.counts.get_mut(bucket_index(v)) {
            *slot = slot.saturating_add(1);
        }
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value; `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value; `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`). The estimate is within
    /// `1/16` relative error of a truly recorded value and is clamped
    /// to the observed `[min, max]`, so single-value histograms answer
    /// exactly. `None` when empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = quantile_rank(q, self.count);
        // Extreme ranks are exact: rank 1 is the smallest sample, rank
        // `count` the largest.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_representative(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram into this one. Commutative and
    /// associative up to saturation.
    pub fn merge(&mut self, other: &HistogramCore) {
        for (slot, &c) in self.counts.iter_mut().zip(other.counts.iter()) {
            *slot = slot.saturating_add(c);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// A compact, position-independent copy: only occupied buckets,
    /// index-sorted (the iteration order is already ascending).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (i as u16, c))
                .collect(),
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
        }
    }
}

/// Rank (1-based) of the `q`-quantile among `count` samples.
fn quantile_rank(q: f64, count: u64) -> u64 {
    let q = q.clamp(0.0, 1.0);
    // ceil(q * count), within [1, count]; f64 holds counts < 2^53
    // exactly, far beyond anything a run records.
    let r = (q * count as f64).ceil() as u64;
    r.clamp(1, count)
}

/// A frozen histogram: sparse `(bucket, count)` pairs plus totals.
/// Merges commutatively and serializes deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Occupied buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u16, u64)>,
    pub count: u64,
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Same estimator as [`HistogramCore::quantile`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = quantile_rank(q, self.count);
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for &(idx, c) in &self.buckets {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return Some(bucket_representative(idx as usize).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the recorded values, rounded down. `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// Merge `other` into `self`. `merge(a, b) == merge(b, a)`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u16, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, cb));
                        b.next();
                    } else {
                        merged.push((ia, ca.saturating_add(cb)));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        let self_empty = self.count == 0;
        self.buckets = merged;
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = if self_empty {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* — the repo is dependency-free, so
    /// "property tests" are seeded sweeps.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    #[test]
    fn bucket_scheme_is_continuous_and_monotone() {
        // Exhaustive below 2^20, then spot checks at octave edges.
        let mut prev = 0usize;
        for v in 0u64..(1 << 20) {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at v={v}");
            assert!(bucket_lower(idx) <= v, "lower({idx}) > {v}");
            assert!(
                v < bucket_lower(idx) + bucket_width(idx),
                "v={v} past bucket {idx}"
            );
            prev = idx;
        }
        for e in 4..64 {
            let v = 1u64 << e;
            assert_eq!(bucket_index(v - 1) + 1, bucket_index(v), "edge at 2^{e}");
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn representative_is_within_relative_error_bound() {
        let mut rng = Rng(0xDECAF);
        for _ in 0..20_000 {
            // Spread magnitudes across all octaves.
            let v = rng.next() >> (rng.next() % 64);
            let rep = bucket_representative(bucket_index(v));
            let err = rep.abs_diff(v);
            // err <= width/2 <= lower/16 <= v/16 (and exact below 16).
            assert!(
                err.saturating_mul(REL_ERROR_DENOM) <= v,
                "v={v} rep={rep} err={err}"
            );
        }
    }

    #[test]
    fn quantiles_are_within_documented_bound() {
        let mut rng = Rng(42);
        for round in 0..50 {
            let n = 1 + (rng.next() % 400) as usize;
            let mut vals: Vec<u64> = (0..n).map(|_| rng.next() >> (rng.next() % 48)).collect();
            let mut h = HistogramCore::new();
            for &v in &vals {
                h.record(v);
            }
            vals.sort_unstable();
            for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                let est = h.quantile(q).unwrap();
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let truth = vals[rank - 1];
                let err = est.abs_diff(truth);
                assert!(
                    err.saturating_mul(REL_ERROR_DENOM) <= truth,
                    "round {round}: q={q} est={est} truth={truth} n={n}"
                );
            }
        }
    }

    #[test]
    fn empty_and_single_value_edge_cases() {
        let h = HistogramCore::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.snapshot().mean(), None);

        let mut h = HistogramCore::new();
        h.record(123_456);
        // min/max clamping makes single-value histograms exact.
        for &q in &[0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(123_456));
        }
        assert_eq!(h.snapshot().mean(), Some(123_456));
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        let mut h = HistogramCore::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX, "sum saturates, never wraps");
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        let snap = h.snapshot();
        assert_eq!(snap.buckets, vec![((NUM_BUCKETS - 1) as u16, 3)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut rng = Rng(7);
        for _ in 0..20 {
            let mut a = HistogramCore::new();
            let mut b = HistogramCore::new();
            for _ in 0..(rng.next() % 200) {
                a.record(rng.next() >> (rng.next() % 50));
            }
            for _ in 0..(rng.next() % 200) {
                b.record(rng.next() >> (rng.next() % 50));
            }
            let (sa, sb) = (a.snapshot(), b.snapshot());
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            assert_eq!(ab, ba);

            // Core merge agrees with snapshot merge.
            let mut core = a.clone();
            core.merge(&b);
            assert_eq!(core.snapshot(), ab);
        }
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = HistogramCore::new();
        a.record(5);
        a.record(500);
        let sa = a.snapshot();
        let empty = HistogramCore::new().snapshot();
        let mut x = sa.clone();
        x.merge(&empty);
        assert_eq!(x, sa);
        let mut y = empty.clone();
        y.merge(&sa);
        assert_eq!(y, sa);
    }
}
