//! Shared relay buffer pool.
//!
//! Every byte the proxy moves crosses a staging buffer; before this
//! pool each `copy_dir` call allocated its own `vec![0u8; chunk]`, so
//! a connection-churn workload paid an allocation (and page faults)
//! per relay direction. The pool keeps a bounded free list of
//! fixed-size segments shared by all pumps — thread-pair and reactor
//! alike — and hands out RAII handles that return their segment on
//! drop. Hits and misses are counted through `wacs-obs` so the bench
//! harness can report pool effectiveness per scenario.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use wacs_obs::Counter;
use wacs_sync::Mutex;

/// Pool tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Size of every pooled segment. Requests larger than this are
    /// satisfied with a one-off allocation that is *not* retained.
    pub seg_bytes: usize,
    /// Maximum segments kept on the free list; beyond it, returned
    /// buffers are dropped (bounds idle memory after a burst).
    pub max_retained: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            seg_bytes: 256 * 1024,
            max_retained: 512,
        }
    }
}

struct PoolInner {
    cfg: PoolConfig,
    free: Mutex<Vec<Box<[u8]>>>,
    hits: Counter,
    misses: Counter,
}

/// A bounded free list of relay segments. Cloning shares the pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(PoolConfig::default())
    }
}

impl BufferPool {
    /// Pool with standalone hit/miss counters (not in any registry).
    pub fn new(cfg: PoolConfig) -> Self {
        Self::with_counters(cfg, Counter::default(), Counter::default())
    }

    /// Pool whose hit/miss counters live in the caller's registry
    /// (typically `ProxyStats::pool_hits` / `pool_misses`).
    pub fn with_counters(cfg: PoolConfig, hits: Counter, misses: Counter) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                cfg,
                free: Mutex::new(Vec::new()),
                hits,
                misses,
            }),
        }
    }

    /// Segment size this pool retains.
    pub fn seg_bytes(&self) -> usize {
        self.inner.cfg.seg_bytes
    }

    /// Take a buffer of at least `min_bytes`. Pooled segments satisfy
    /// any request up to `seg_bytes`; larger requests allocate exactly
    /// `min_bytes` and bypass retention.
    pub fn get(&self, min_bytes: usize) -> PooledBuf {
        if min_bytes <= self.inner.cfg.seg_bytes {
            if let Some(buf) = self.inner.free.lock().pop() {
                self.inner.hits.inc();
                return PooledBuf {
                    buf: Some(buf),
                    pool: self.clone(),
                };
            }
        }
        self.inner.misses.inc();
        let len = if min_bytes <= self.inner.cfg.seg_bytes {
            self.inner.cfg.seg_bytes // full-size: retainable on return
        } else {
            min_bytes
        };
        // The one sanctioned allocation site of the relay data plane:
        // every other path takes a recycled segment from the free list.
        let buf = vec![0u8; len].into_boxed_slice(); // lint:allow(hot-path-alloc)
        PooledBuf {
            buf: Some(buf),
            pool: self.clone(),
        }
    }

    /// Take a full-size segment (`seg_bytes`).
    pub fn get_seg(&self) -> PooledBuf {
        self.get(self.inner.cfg.seg_bytes)
    }

    fn put(&self, buf: Box<[u8]>) {
        if buf.len() == self.inner.cfg.seg_bytes {
            let mut free = self.inner.free.lock();
            if free.len() < self.inner.cfg.max_retained {
                free.push(buf);
            }
        }
        // Off-size or over-cap buffers simply drop.
    }

    /// Segments currently on the free list (diagnostics/tests).
    pub fn retained(&self) -> usize {
        self.inner.free.lock().len()
    }
}

/// RAII handle to one pooled buffer; returns it to the pool on drop.
pub struct PooledBuf {
    buf: Option<Box<[u8]>>,
    pool: BufferPool,
}

impl Deref for PooledBuf {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.buf {
            Some(b) => b,
            None => &[],
        }
    }
}

impl DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        match &mut self.buf {
            Some(b) => b,
            None => &mut [],
        }
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seg: usize, retain: usize) -> PoolConfig {
        PoolConfig {
            seg_bytes: seg,
            max_retained: retain,
        }
    }

    #[test]
    fn miss_then_hit_with_counted_reuse() {
        let hits = Counter::default();
        let misses = Counter::default();
        let pool = BufferPool::with_counters(cfg(1024, 8), hits.clone(), misses.clone());
        let b = pool.get(512);
        assert_eq!(b.len(), 1024); // pooled segments are full-size
        assert_eq!((hits.get(), misses.get()), (0, 1));
        drop(b);
        assert_eq!(pool.retained(), 1);
        let b2 = pool.get(1024);
        assert_eq!((hits.get(), misses.get()), (1, 1));
        drop(b2);
    }

    #[test]
    fn oversize_requests_bypass_retention() {
        let pool = BufferPool::new(cfg(1024, 8));
        let big = pool.get(4096);
        assert!(big.len() >= 4096);
        drop(big);
        assert_eq!(pool.retained(), 0, "off-size buffers are not retained");
    }

    #[test]
    fn retention_is_bounded() {
        let pool = BufferPool::new(cfg(256, 2));
        let bufs: Vec<_> = (0..5).map(|_| pool.get_seg()).collect();
        drop(bufs);
        assert_eq!(pool.retained(), 2);
    }

    #[test]
    fn buffers_are_writable_through_the_handle() {
        let pool = BufferPool::new(cfg(64, 2));
        let mut b = pool.get_seg();
        b[0] = 0xAB;
        b[63] = 0xCD;
        assert_eq!((b[0], b[63]), (0xAB, 0xCD));
    }
}
