//! Relay accounting, shared between server threads.
//!
//! Counters are backed by a `wacs-obs` [`Registry`] rather than bare
//! atomics, so a proxy server's numbers live in the same namespace as
//! the span histograms recorded around its service paths (control
//! handshake, ConnectReq, BindReq/rendezvous, pump segments) and can be
//! exported/merged as one snapshot. The real-socket paths time spans
//! with the monotonic clock — they are for humans; only the simulated
//! paths promise deterministic snapshots.

use wacs_obs::{Counter, Gauge, Histogram, Registry};

/// Counters and service-time histograms kept by each proxy server
/// (outer or inner). Handles are shared: cloning a field aliases it.
pub struct ProxyStats {
    registry: Registry,
    /// Bytes copied through the relay (both directions).
    pub relayed_bytes: Counter,
    /// Control connections accepted.
    pub control_accepts: Counter,
    /// Active opens relayed (ConnectReq handled successfully).
    pub connects_ok: Counter,
    pub connects_failed: Counter,
    /// Passive registrations (BindReq handled).
    pub binds: Counter,
    /// Passive relays completed (peer↔inner bridges established).
    pub relays_ok: Counter,
    pub relays_failed: Counter,
    /// Admission-control refusals (typed `Busy` sent to the peer).
    pub busy_rejected: Counter,
    /// Half-open relays reaped by the idle-timeout sweeper.
    pub idle_reaped: Counter,
    /// Heartbeat probes sent / replies observed on the outer→inner
    /// control session.
    pub hb_pings: Counter,
    pub hb_pongs: Counter,
    /// Dead-peer declarations of the inner server (heartbeat timeout,
    /// refused dial, or control-session EOF while alive).
    pub inner_deaths: Counter,
    /// Successful re-establishments of the control session after a
    /// death (each immediately re-registers live binds via BindSync).
    pub inner_reconnects: Counter,
    /// Bind-table syncs applied (inner) or sent (outer).
    pub bind_syncs: Counter,
    /// Relay requests refused because the target endpoint was not in
    /// the synced bind table (inner server, registration required).
    pub relays_unauthorized: Counter,
    /// `pump_tracked` pairs whose stream clone failed; both sockets are
    /// reset rather than silently degrading to one-directional copy.
    pub pump_clone_failures: Counter,
    /// Buffer-pool segment reuses (free-list pops).
    pub pool_hits: Counter,
    /// Buffer-pool allocations (free list empty or over-size request).
    pub pool_misses: Counter,
    /// Segments read by a pump (one successful `read` call each).
    pub pump_segments: Counter,
    /// Reactor flushes that drained more than one read in a single
    /// write syscall (the coalescing win).
    pub pump_coalesced_writes: Counter,
    /// Reactor flushes whose single syscall spanned both staged
    /// segments via vectored I/O.
    pub pump_vectored_writes: Counter,
    /// 1 while the inner server's control session is live, else 0.
    pub inner_alive: Gauge,
    /// Currently active relay-table entries.
    pub active_relays: Gauge,
    /// Relays currently owned by reactor threads (multiplexed mode).
    pub reactor_relays: Gauge,
    /// First control message read+dispatch time.
    pub control_handshake_ns: Histogram,
    /// ConnectReq service: dial target + reply.
    pub connect_req_ns: Histogram,
    /// BindReq service: rendezvous allocation + registration + reply.
    pub bind_req_ns: Histogram,
    /// Passive relay bridge establishment (peer arrival → streams
    /// bridged or refused).
    pub relay_bridge_ns: Histogram,
    /// One pump segment: read a chunk from one side, write it to the
    /// other.
    pub pump_segment_ns: Histogram,
}

impl Default for ProxyStats {
    fn default() -> Self {
        Self::in_registry(&Registry::new(), "proxy")
    }
}

impl ProxyStats {
    /// Create the instrument set under `prefix` in `registry`.
    pub fn in_registry(registry: &Registry, prefix: &str) -> Self {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        let g = |name: &str| registry.gauge(&format!("{prefix}.{name}"));
        let h = |name: &str| registry.histogram(&format!("{prefix}.{name}"));
        ProxyStats {
            relayed_bytes: c("relayed_bytes"),
            control_accepts: c("control_accepts"),
            connects_ok: c("connects_ok"),
            connects_failed: c("connects_failed"),
            binds: c("binds"),
            relays_ok: c("relays_ok"),
            relays_failed: c("relays_failed"),
            busy_rejected: c("busy_rejected"),
            idle_reaped: c("idle_reaped"),
            hb_pings: c("hb_pings"),
            hb_pongs: c("hb_pongs"),
            inner_deaths: c("inner_deaths"),
            inner_reconnects: c("inner_reconnects"),
            bind_syncs: c("bind_syncs"),
            relays_unauthorized: c("relays_unauthorized"),
            pump_clone_failures: c("pump_clone_failures"),
            pool_hits: c("pool_hits"),
            pool_misses: c("pool_misses"),
            pump_segments: c("pump_segments"),
            pump_coalesced_writes: c("pump_coalesced_writes"),
            pump_vectored_writes: c("pump_vectored_writes"),
            inner_alive: g("inner_alive"),
            active_relays: g("active_relays"),
            reactor_relays: g("reactor_relays"),
            control_handshake_ns: h("control_handshake_ns"),
            connect_req_ns: h("connect_req_ns"),
            bind_req_ns: h("bind_req_ns"),
            relay_bridge_ns: h("relay_bridge_ns"),
            pump_segment_ns: h("pump_segment_ns"),
            registry: registry.clone(),
        }
    }

    /// The registry every instrument lives in.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    pub fn add_bytes(&self, n: u64) {
        self.relayed_bytes.add(n);
    }

    pub fn snapshot(&self) -> ProxySnapshot {
        ProxySnapshot {
            relayed_bytes: self.relayed_bytes.get(),
            control_accepts: self.control_accepts.get(),
            connects_ok: self.connects_ok.get(),
            connects_failed: self.connects_failed.get(),
            binds: self.binds.get(),
            relays_ok: self.relays_ok.get(),
            relays_failed: self.relays_failed.get(),
            busy_rejected: self.busy_rejected.get(),
            idle_reaped: self.idle_reaped.get(),
            inner_deaths: self.inner_deaths.get(),
            inner_reconnects: self.inner_reconnects.get(),
            relays_unauthorized: self.relays_unauthorized.get(),
            pump_clone_failures: self.pump_clone_failures.get(),
            pool_hits: self.pool_hits.get(),
            pool_misses: self.pool_misses.get(),
            pump_segments: self.pump_segments.get(),
            pump_coalesced_writes: self.pump_coalesced_writes.get(),
        }
    }
}

/// Point-in-time copy of the [`ProxyStats`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxySnapshot {
    pub relayed_bytes: u64,
    pub control_accepts: u64,
    pub connects_ok: u64,
    pub connects_failed: u64,
    pub binds: u64,
    pub relays_ok: u64,
    pub relays_failed: u64,
    pub busy_rejected: u64,
    pub idle_reaped: u64,
    pub inner_deaths: u64,
    pub inner_reconnects: u64,
    pub relays_unauthorized: u64,
    pub pump_clone_failures: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub pump_segments: u64,
    pub pump_coalesced_writes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = ProxyStats::default();
        s.add_bytes(100);
        s.add_bytes(28);
        s.connects_ok.inc();
        s.binds.inc();
        s.binds.inc();
        let snap = s.snapshot();
        assert_eq!(snap.relayed_bytes, 128);
        assert_eq!(snap.connects_ok, 1);
        assert_eq!(snap.binds, 2);
        assert_eq!(snap.relays_failed, 0);
    }

    #[test]
    fn instruments_share_one_registry_namespace() {
        let reg = Registry::new();
        let s = ProxyStats::in_registry(&reg, "proxy.outer");
        s.connects_ok.inc();
        s.connect_req_ns.record(1_000_000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("proxy.outer.connects_ok"), Some(&1));
        assert_eq!(
            snap.histograms
                .get("proxy.outer.connect_req_ns")
                .map(|h| h.count),
            Some(1)
        );
    }
}
