//! Relay accounting, shared between server threads via atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters kept by each proxy server (outer or inner).
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Bytes copied through the relay (both directions).
    pub relayed_bytes: AtomicU64,
    /// Control connections accepted.
    pub control_accepts: AtomicU64,
    /// Active opens relayed (ConnectReq handled successfully).
    pub connects_ok: AtomicU64,
    pub connects_failed: AtomicU64,
    /// Passive registrations (BindReq handled).
    pub binds: AtomicU64,
    /// Passive relays completed (peer↔inner bridges established).
    pub relays_ok: AtomicU64,
    pub relays_failed: AtomicU64,
}

impl ProxyStats {
    pub fn add_bytes(&self, n: u64) {
        self.relayed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ProxySnapshot {
        ProxySnapshot {
            relayed_bytes: self.relayed_bytes.load(Ordering::Relaxed),
            control_accepts: self.control_accepts.load(Ordering::Relaxed),
            connects_ok: self.connects_ok.load(Ordering::Relaxed),
            connects_failed: self.connects_failed.load(Ordering::Relaxed),
            binds: self.binds.load(Ordering::Relaxed),
            relays_ok: self.relays_ok.load(Ordering::Relaxed),
            relays_failed: self.relays_failed.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ProxyStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProxySnapshot {
    pub relayed_bytes: u64,
    pub control_accepts: u64,
    pub connects_ok: u64,
    pub connects_failed: u64,
    pub binds: u64,
    pub relays_ok: u64,
    pub relays_failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = ProxyStats::default();
        s.add_bytes(100);
        s.add_bytes(28);
        ProxyStats::bump(&s.connects_ok);
        ProxyStats::bump(&s.binds);
        ProxyStats::bump(&s.binds);
        let snap = s.snapshot();
        assert_eq!(snap.relayed_bytes, 128);
        assert_eq!(snap.connects_ok, 1);
        assert_eq!(snap.binds, 2);
        assert_eq!(snap.relays_failed, 0);
    }
}
