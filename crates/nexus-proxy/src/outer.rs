//! The outer server: runs *outside* the firewall (in the paper, on a
//! Sun Ultra 80 in RWCP's DMZ) and relays TCP on behalf of inside
//! clients.
//!
//! * Active opens (Fig. 3): a client sends `ConnectReq`; the outer
//!   server dials the target and bridges the two streams.
//! * Passive opens (Fig. 4): a client registers with `BindReq`; the
//!   outer server allocates a *rendezvous* port, and every peer that
//!   connects to it is bridged to the client through the inner server
//!   (reached via the single `nxport` firewall hole).

use crate::protocol::Msg;
use crate::pump::{pump_detached, DEFAULT_CHUNK};
use crate::stats::{ProxySnapshot, ProxyStats};
use firewall::vnet::VNet;
use std::collections::HashMap;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_sync::OrderedMutex;

/// Outer server configuration.
#[derive(Debug, Clone)]
pub struct OuterConfig {
    /// Logical host the server runs on (must be outside the firewall).
    pub host: String,
    /// Control port clients connect to.
    pub ctrl_port: u16,
    /// Logical address of the inner server (`host`, `nxport`). `None`
    /// disables passive relaying through an inner server: peers of a
    /// bound client are dialed back directly (only possible when no
    /// firewall protects the client).
    pub inner: Option<(String, u16)>,
    /// Relay buffer size.
    pub chunk: usize,
}

impl OuterConfig {
    pub fn new(host: impl Into<String>) -> Self {
        OuterConfig {
            host: host.into(),
            ctrl_port: firewall::OUTER_PORT,
            inner: None,
            chunk: DEFAULT_CHUNK,
        }
    }

    pub fn with_inner(mut self, host: impl Into<String>, nxport: u16) -> Self {
        self.inner = Some((host.into(), nxport));
        self
    }
}

/// A running outer server. Dropping the handle shuts it down.
pub struct OuterServer {
    cfg: OuterConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    /// Rendezvous registry: rdv port → client private endpoint.
    rdv: Arc<OrderedMutex<HashMap<u16, (String, u16)>>>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl OuterServer {
    /// Bind the control port and start serving.
    pub fn start(net: VNet, cfg: OuterConfig) -> io::Result<OuterServer> {
        let listener = net.bind(&cfg.host, cfg.ctrl_port)?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ProxyStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let rdv = Arc::new(OrderedMutex::new("nexus.outer.rdv", HashMap::new()));

        let ctx = ServerCtx {
            net,
            cfg: cfg.clone(),
            stats: stats.clone(),
            shutdown: shutdown.clone(),
            rdv: rdv.clone(),
        };
        let accept_thread = thread::spawn(move || {
            // Keep the listener alive for the server's lifetime.
            let listener = listener;
            while !ctx.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        ctx.stats.control_accepts.inc();
                        let c = ctx.clone();
                        thread::spawn(move || c.handle_control(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(OuterServer {
            cfg,
            stats,
            shutdown,
            rdv,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn stats(&self) -> ProxySnapshot {
        self.stats.snapshot()
    }

    /// Full metric snapshot (counters + service-time histograms).
    pub fn obs_snapshot(&self) -> wacs_obs::RegistrySnapshot {
        self.stats.registry().snapshot()
    }

    /// Logical control address clients should use.
    pub fn ctrl_addr(&self) -> (String, u16) {
        (self.cfg.host.clone(), self.cfg.ctrl_port)
    }

    /// Currently registered rendezvous ports (diagnostics).
    pub fn rendezvous_ports(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.rdv.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for OuterServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// State shared by handler threads.
#[derive(Clone)]
struct ServerCtx {
    net: VNet,
    cfg: OuterConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    rdv: Arc<OrderedMutex<HashMap<u16, (String, u16)>>>,
}

impl ServerCtx {
    fn handle_control(&self, mut stream: TcpStream) {
        let started = Instant::now();
        let msg = Msg::read_from(&mut stream);
        self.stats
            .control_handshake_ns
            .record(started.elapsed().as_nanos() as u64);
        match msg {
            Ok(Msg::ConnectReq { host, port }) => self.handle_connect(stream, host, port),
            Ok(Msg::BindReq { host, port }) => self.handle_bind(stream, host, port),
            _ => { /* protocol error or EOF: drop the connection */ }
        }
    }

    /// Fig. 3: dial the target on the client's behalf and bridge.
    fn handle_connect(&self, mut client: TcpStream, host: String, port: u16) {
        let started = Instant::now();
        match self.net.dial(&self.cfg.host, &host, port) {
            Ok(target) => {
                if (Msg::ConnectRep {
                    ok: true,
                    detail: String::new(),
                })
                .write_to(&mut client)
                .is_ok()
                {
                    self.stats.connects_ok.inc();
                    self.stats
                        .connect_req_ns
                        .record(started.elapsed().as_nanos() as u64);
                    pump_detached(client, target, self.cfg.chunk, self.stats.clone());
                }
            }
            Err(e) => {
                self.stats.connects_failed.inc();
                self.stats
                    .connect_req_ns
                    .record(started.elapsed().as_nanos() as u64);
                let _ = Msg::ConnectRep {
                    ok: false,
                    detail: e.to_string(),
                }
                .write_to(&mut client);
            }
        }
    }

    /// Fig. 4 steps 1-2: allocate a rendezvous port for the client and
    /// relay arriving peers through the inner server. The registration
    /// lives as long as the client keeps its control connection open.
    fn handle_bind(&self, mut ctrl: TcpStream, client_host: String, client_port: u16) {
        let started = Instant::now();
        let listener = match self.net.bind(&self.cfg.host, 0) {
            Ok(l) => l,
            Err(_) => {
                let _ = Msg::BindRep { rdv_port: 0 }.write_to(&mut ctrl);
                return;
            }
        };
        if listener.set_nonblocking(true).is_err() {
            let _ = Msg::BindRep { rdv_port: 0 }.write_to(&mut ctrl);
            return;
        }
        let rdv_port = listener.logical_port();
        // Register before acknowledging, so a client that acts on the
        // BindRep immediately observes a live rendezvous.
        self.rdv
            .lock()
            .insert(rdv_port, (client_host.clone(), client_port));
        self.stats.binds.inc();
        if (Msg::BindRep { rdv_port }).write_to(&mut ctrl).is_err() {
            self.rdv.lock().remove(&rdv_port);
            return;
        }
        self.stats
            .bind_req_ns
            .record(started.elapsed().as_nanos() as u64);

        // Watch the control connection: EOF ends the registration.
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = done.clone();
            let mut ctrl = ctrl;
            thread::spawn(move || {
                let mut scratch = [0u8; 16];
                loop {
                    match io::Read::read(&mut ctrl, &mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => { /* clients don't speak after bind */ }
                    }
                }
                done.store(true, Ordering::Relaxed);
            });
        }

        // Accept peers on the rendezvous port.
        let ctx = self.clone();
        thread::spawn(move || {
            let listener = listener; // owned: drop unregisters
            while !done.load(Ordering::Relaxed) && !ctx.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((peer, _)) => {
                        peer.set_nonblocking(false).ok();
                        ctx.bridge_peer(peer, &client_host, client_port);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
            // Unbind before withdrawing the registry entry so that
            // observers who see the port gone can rely on new dials
            // failing.
            drop(listener);
            ctx.rdv.lock().remove(&rdv_port);
        });
    }

    /// Fig. 4 steps 4-5: a peer arrived; reach the client through the
    /// inner server (or directly when no inner server is configured).
    fn bridge_peer(&self, peer: TcpStream, client_host: &str, client_port: u16) {
        let started = Instant::now();
        let inward = match &self.cfg.inner {
            Some((inner_host, nxport)) => self
                .net
                .dial(&self.cfg.host, inner_host, *nxport)
                .and_then(|mut inner| {
                    Msg::RelayReq {
                        host: client_host.to_string(),
                        port: client_port,
                    }
                    .write_to(&mut inner)?;
                    match Msg::read_from(&mut inner)? {
                        Msg::RelayRep { ok: true } => Ok(inner),
                        Msg::RelayRep { ok: false } => Err(io::Error::new(
                            io::ErrorKind::ConnectionRefused,
                            "inner server could not reach client",
                        )),
                        _ => Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "unexpected inner reply",
                        )),
                    }
                }),
            None => self.net.dial(&self.cfg.host, client_host, client_port),
        };
        self.stats
            .relay_bridge_ns
            .record(started.elapsed().as_nanos() as u64);
        match inward {
            Ok(inward) => {
                self.stats.relays_ok.inc();
                pump_detached(peer, inward, self.cfg.chunk, self.stats.clone());
            }
            Err(_) => {
                self.stats.relays_failed.inc();
                // Dropping `peer` resets the rendezvous connection.
            }
        }
    }
}
