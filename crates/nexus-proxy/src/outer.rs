//! The outer server: runs *outside* the firewall (in the paper, on a
//! Sun Ultra 80 in RWCP's DMZ) and relays TCP on behalf of inside
//! clients.
//!
//! * Active opens (Fig. 3): a client sends `ConnectReq`; the outer
//!   server dials the target and bridges the two streams.
//! * Passive opens (Fig. 4): a client registers with `BindReq`; the
//!   outer server allocates a *rendezvous* port, and every peer that
//!   connects to it is bridged to the client through the inner server
//!   (reached via the single `nxport` firewall hole).
//!
//! Liveness layer (DESIGN.md §6b): every relay is tracked in a
//! connection table so half-open pairs can be idle-reaped and shutdown
//! can drain; admission is bounded (total and per-peer) with a typed
//! [`Msg::Busy`] refusal; and when heartbeats are enabled the outer
//! server keeps a control session to the inner server — Ping/Pong for
//! dead-peer detection, `BindSync` so a restarted inner server learns
//! the live bind registrations again.
//!
//! Fleet layer (DESIGN.md §6d): with [`OuterConfig::with_fleet`] this
//! server is one shard of an N-outer deployment. Bind keys are owned
//! by exactly one shard under the shared HRW [`ShardMap`]; a `BindReq`
//! for a key this shard does not own is answered with a typed
//! [`Msg::Redirect`] to the owner, and every control session to the
//! inner server opens with a generation-counted [`Msg::ShardSync`] so
//! the inner server can keep one authorization slice per shard.

use crate::hook::{interpose, DialHook, DialLeg};
use crate::liveness::{
    AdmissionGate, AdmissionLimits, BreakerConfig, HeartbeatConfig, SharedBreaker,
};
use crate::pool::{BufferPool, PoolConfig};
use crate::protocol::Msg;
use crate::pump::{pump_pooled, RelayActivity, DEFAULT_CHUNK};
use crate::reactor::{PumpReactor, ReactorConfig};
use crate::shard::{bind_key, member_tag, ShardMap, ShardRoute, ShardStats};
use crate::stats::{ProxySnapshot, ProxyStats};
use firewall::vnet::VNet;
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_sync::OrderedMutex;

/// Which data plane moves relay bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PumpMode {
    /// Compatibility mode: two blocking threads per relay
    /// ([`crate::pump::pump_tracked`]). Simple, but thread count scales
    /// with concurrent relays.
    #[default]
    ThreadPair,
    /// Multiplexed mode: N relays per reactor thread over nonblocking
    /// sockets with pooled buffers and vectored write coalescing
    /// ([`crate::reactor::PumpReactor`]).
    Reactor,
}

/// Static membership of a sharded outer-server fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Control endpoints of every shard — the *same list in the same
    /// order* on every shard, client, and inner server (indices are
    /// the fleet-wide shard identities).
    pub members: Vec<(String, u16)>,
    /// This server's index in `members`.
    pub self_index: usize,
}

/// Outer server configuration.
#[derive(Debug, Clone)]
pub struct OuterConfig {
    /// Logical host the server runs on (must be outside the firewall).
    pub host: String,
    /// Control port clients connect to.
    pub ctrl_port: u16,
    /// Logical address of the inner server (`host`, `nxport`). `None`
    /// disables passive relaying through an inner server: peers of a
    /// bound client are dialed back directly (only possible when no
    /// firewall protects the client).
    pub inner: Option<(String, u16)>,
    /// Relay buffer size.
    pub chunk: usize,
    /// Admission bounds for concurrent relays.
    pub limits: AdmissionLimits,
    /// A tracked relay with no traffic in either direction for longer
    /// than this is considered half-open and reaped.
    pub idle_timeout: Duration,
    /// Enable the outer→inner heartbeat control session. `None` (the
    /// default) keeps the pre-liveness behaviour: no session, no
    /// dead-peer detection, no bind re-sync.
    pub heartbeat: Option<HeartbeatConfig>,
    /// WAN-leg circuit breaker tuning (inner-server dials).
    pub breaker: BreakerConfig,
    /// Relay data plane: thread-pair (default, compatibility) or the
    /// multiplexed reactor.
    pub pump_mode: PumpMode,
    /// Reactor tuning (threads, idle backoff); used when `pump_mode`
    /// is [`PumpMode::Reactor`].
    pub reactor: ReactorConfig,
    /// Shard-fleet membership. `None` (the default) is the paper's
    /// single-proxy deployment: no ownership checks, no redirects, no
    /// shard-map announcements.
    pub fleet: Option<FleetSpec>,
    /// Optional socket-level interposer on the server's outbound dials
    /// (destination, inner-relay, heartbeat legs). `None` — the
    /// default — leaves every dial untouched (DESIGN.md §6f).
    pub dial_hook: Option<DialHook>,
}

impl OuterConfig {
    pub fn new(host: impl Into<String>) -> Self {
        OuterConfig {
            host: host.into(),
            ctrl_port: firewall::OUTER_PORT,
            inner: None,
            chunk: DEFAULT_CHUNK,
            limits: AdmissionLimits::default(),
            idle_timeout: Duration::from_secs(30),
            heartbeat: None,
            breaker: BreakerConfig::default(),
            pump_mode: PumpMode::default(),
            reactor: ReactorConfig::default(),
            fleet: None,
            dial_hook: None,
        }
    }

    pub fn with_inner(mut self, host: impl Into<String>, nxport: u16) -> Self {
        self.inner = Some((host.into(), nxport));
        self
    }

    pub fn with_limits(mut self, limits: AdmissionLimits) -> Self {
        self.limits = limits;
        self
    }

    pub fn with_idle_timeout(mut self, t: Duration) -> Self {
        self.idle_timeout = t;
        self
    }

    pub fn with_heartbeat(mut self, hb: HeartbeatConfig) -> Self {
        self.heartbeat = Some(hb);
        self
    }

    pub fn with_breaker(mut self, b: BreakerConfig) -> Self {
        self.breaker = b;
        self
    }

    pub fn with_pump_mode(mut self, mode: PumpMode) -> Self {
        self.pump_mode = mode;
        self
    }

    pub fn with_reactor_config(mut self, r: ReactorConfig) -> Self {
        self.reactor = r;
        self
    }

    /// Install a socket-level interposer on the server's outbound
    /// dials (chaos testing; see `wacs-chaos`).
    pub fn with_dial_hook(mut self, hook: DialHook) -> Self {
        self.dial_hook = Some(hook);
        self
    }

    /// Run as shard `self_index` of the fleet listed in `members`.
    pub fn with_fleet(mut self, members: Vec<(String, u16)>, self_index: usize) -> Self {
        self.fleet = Some(FleetSpec {
            members,
            self_index,
        });
        self
    }
}

/// Live fleet state of one shard: the membership list plus its
/// generation, updated only by [`OuterServer::install_fleet`].
///
/// The generation lives in an atomic *outside* the members lock so the
/// heartbeat syncer can follow the BindSync honesty discipline: read
/// the generation first, then snapshot the members. A concurrent
/// install (which writes members *before* publishing the generation)
/// can only make the announced generation stale relative to the
/// shipped list — detectable, and repaired by the next sync.
struct FleetState {
    self_index: usize,
    members: OrderedMutex<Vec<(String, u16)>>,
    gen: AtomicU64, // lint:allow(bare-atomic-counter)
    stats: ShardStats,
}

impl FleetState {
    /// Snapshot the current [`ShardMap`] and the matching address book.
    fn shard_map(&self) -> (ShardMap, Vec<(String, u16)>) {
        let gen = self.gen.load(Ordering::Acquire);
        let members = self.members.lock().clone();
        let tags = members
            .iter()
            .map(|(h, p)| member_tag(&bind_key(h, *p)))
            .collect();
        (ShardMap::new(gen, tags), members)
    }
}

/// One tracked relay pair. The streams are clones of the pump's, held
/// so the idle-reaper and drain can reset a half-open pair from
/// outside the (possibly blocked) pump threads.
struct RelayEntry {
    a: TcpStream,
    b: TcpStream,
    activity: RelayActivity,
    reaped: bool,
}

type RelayTable = Arc<OrderedMutex<HashMap<u64, RelayEntry>>>;

/// A running outer server. Dropping the handle shuts it down.
pub struct OuterServer {
    cfg: OuterConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    /// Rendezvous registry: rdv port → client private endpoint.
    rdv: Arc<OrderedMutex<HashMap<u16, (String, u16)>>>,
    relays: RelayTable,
    admission: Arc<OrderedMutex<AdmissionGate>>,
    breaker: SharedBreaker,
    reactor: Option<Arc<PumpReactor>>,
    fleet: Option<Arc<FleetState>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl OuterServer {
    /// Bind the control port and start serving.
    pub fn start(net: VNet, cfg: OuterConfig) -> io::Result<OuterServer> {
        let listener = net.bind(&cfg.host, cfg.ctrl_port)?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ProxyStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let rdv = Arc::new(OrderedMutex::new("nexus.outer.rdv", HashMap::new()));
        let relays: RelayTable = Arc::new(OrderedMutex::new("nexus.outer.relays", HashMap::new()));
        let breaker = SharedBreaker::new(cfg.breaker).with_obs(stats.registry(), "proxy");
        // One staging-buffer pool for every pump this server runs,
        // thread-pair and reactor alike. Segments are at least the
        // default so the reactor can coalesce even small-chunk configs.
        let pool = BufferPool::with_counters(
            PoolConfig {
                seg_bytes: cfg.chunk.max(PoolConfig::default().seg_bytes),
                ..PoolConfig::default()
            },
            stats.pool_hits.clone(),
            stats.pool_misses.clone(),
        );
        let reactor = match cfg.pump_mode {
            PumpMode::ThreadPair => None,
            PumpMode::Reactor => Some(PumpReactor::start(cfg.reactor, stats.clone(), pool.clone())),
        };
        let fleet = cfg.fleet.as_ref().map(|spec| {
            let shard_stats = ShardStats::in_registry(stats.registry());
            shard_stats.map_generation.set(1);
            Arc::new(FleetState {
                self_index: spec.self_index,
                members: OrderedMutex::new("nexus.outer.fleet", spec.members.clone()),
                gen: AtomicU64::new(1), // lint:allow(bare-atomic-counter)
                stats: shard_stats,
            })
        });

        let ctx = ServerCtx {
            net,
            cfg: cfg.clone(),
            stats: stats.clone(),
            shutdown: shutdown.clone(),
            rdv: rdv.clone(),
            // Generation counter, not a metric: heartbeat thread
            // compares it against the last synced value.
            rdv_gen: Arc::new(AtomicU64::new(1)), // lint:allow(bare-atomic-counter)
            relays: relays.clone(),
            admission: Arc::new(OrderedMutex::new(
                "nexus.outer.admission",
                AdmissionGate::new(cfg.limits),
            )),
            // Relay-table key allocator. // lint:allow(bare-atomic-counter)
            relay_seq: Arc::new(AtomicU64::new(0)),
            breaker: breaker.clone(),
            pool,
            reactor: reactor.clone(),
            fleet: fleet.clone(),
        };
        let mut threads = Vec::new();

        let accept_ctx = ctx.clone();
        threads.push(thread::spawn(move || {
            // Keep the listener alive for the server's lifetime.
            let listener = listener;
            while !accept_ctx.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        accept_ctx.stats.control_accepts.inc();
                        let c = accept_ctx.clone();
                        thread::spawn(move || c.handle_control(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
        }));

        let reap_ctx = ctx.clone();
        threads.push(thread::spawn(move || reap_ctx.reaper_loop()));

        if ctx.cfg.heartbeat.is_some() && ctx.cfg.inner.is_some() {
            let hb_ctx = ctx.clone();
            threads.push(thread::spawn(move || hb_ctx.heartbeat_loop()));
        }

        Ok(OuterServer {
            cfg,
            stats,
            shutdown,
            rdv,
            relays,
            admission: ctx.admission.clone(),
            breaker,
            reactor,
            fleet,
            threads,
        })
    }

    pub fn stats(&self) -> ProxySnapshot {
        self.stats.snapshot()
    }

    /// Full metric snapshot (counters + service-time histograms).
    pub fn obs_snapshot(&self) -> wacs_obs::RegistrySnapshot {
        self.stats.registry().snapshot()
    }

    /// Logical control address clients should use.
    pub fn ctrl_addr(&self) -> (String, u16) {
        (self.cfg.host.clone(), self.cfg.ctrl_port)
    }

    /// Currently registered rendezvous ports (diagnostics).
    pub fn rendezvous_ports(&self) -> Vec<u16> {
        let mut v: Vec<u16> = self.rdv.lock().keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Live entries in the relay connection table.
    pub fn active_relays(&self) -> usize {
        self.relays.lock().len()
    }

    /// Admission slots currently held. Chaos invariants assert this
    /// returns to zero once recovery completes (no leaked slots).
    pub fn admission_active(&self) -> u32 {
        self.admission.lock().active()
    }

    /// The WAN-leg circuit breaker (shared: clients may reuse it for
    /// their own outer-server dials).
    pub fn breaker(&self) -> SharedBreaker {
        self.breaker.clone()
    }

    /// Install a newer shard map (e.g. after replacing a dead shard).
    /// Returns `false` — and changes nothing — unless `generation` is
    /// strictly newer than the installed one. The heartbeat session
    /// announces the new map to the inner server on its next tick.
    pub fn install_fleet(&self, generation: u64, members: Vec<(String, u16)>) -> bool {
        let Some(fleet) = &self.fleet else {
            return false;
        };
        let mut cur = fleet.members.lock();
        if generation <= fleet.gen.load(Ordering::Acquire) {
            return false;
        }
        // Members first, generation last: a concurrent reader that
        // paired the old generation with the new list would claim
        // freshness it does not have (see `FleetState`).
        *cur = members;
        fleet.gen.store(generation, Ordering::Release);
        fleet.stats.map_generation.set(generation as i64);
        true
    }

    /// Generation of the installed shard map (0 when not in a fleet).
    pub fn fleet_generation(&self) -> u64 {
        self.fleet
            .as_ref()
            .map_or(0, |f| f.gen.load(Ordering::Acquire))
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Graceful shutdown: stop accepting new work, then wait up to
    /// `timeout` for in-flight pumps to finish. Returns `true` when the
    /// relay table drained completely.
    pub fn drain(&self, timeout: Duration) -> bool {
        self.shutdown();
        // Close the admission gate first: a connect racing the drain
        // must see a typed refusal, not squeeze in a fresh relay while
        // we wait for the table to empty (the wacs-check admission
        // model's no-admit-after-drain invariant).
        self.admission.lock().begin_drain();
        let deadline = Instant::now() + timeout;
        loop {
            if self.relays.lock().is_empty() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            thread::sleep(Duration::from_millis(2)); // lint:allow(bare-sleep) — deadline-bounded poll.
        }
    }
}

impl Drop for OuterServer {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Reactor last: in-flight relays were given their chance to
        // finish by `drain`; anything still live is aborted now.
        if let Some(r) = &self.reactor {
            r.shutdown();
        }
    }
}

/// State shared by handler threads.
#[derive(Clone)]
struct ServerCtx {
    net: VNet,
    cfg: OuterConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    rdv: Arc<OrderedMutex<HashMap<u16, (String, u16)>>>,
    /// Bumped on every rdv insert/remove; the heartbeat thread re-syncs
    /// the bind table when it trails this generation.
    rdv_gen: Arc<AtomicU64>, // lint:allow(bare-atomic-counter)
    relays: RelayTable,
    admission: Arc<OrderedMutex<AdmissionGate>>,
    relay_seq: Arc<AtomicU64>, // lint:allow(bare-atomic-counter)
    breaker: SharedBreaker,
    /// Shared staging-buffer pool for every pump this server runs.
    pool: BufferPool,
    /// `Some` when `pump_mode` is [`PumpMode::Reactor`].
    reactor: Option<Arc<PumpReactor>>,
    /// `Some` when this server is one shard of a fleet.
    fleet: Option<Arc<FleetState>>,
}

impl ServerCtx {
    fn handle_control(&self, mut stream: TcpStream) {
        let started = Instant::now();
        let msg = Msg::read_from(&mut stream);
        self.stats
            .control_handshake_ns
            .record(started.elapsed().as_nanos() as u64);
        match msg {
            Ok(Msg::ConnectReq { host, port }) => self.handle_connect(stream, host, port),
            Ok(Msg::BindReq {
                host,
                port,
                fallback,
            }) => self.handle_bind(stream, host, port, fallback),
            _ => { /* protocol error or EOF: drop the connection */ }
        }
    }

    /// Fig. 3: dial the target on the client's behalf and bridge.
    fn handle_connect(&self, mut client: TcpStream, host: String, port: u16) {
        let started = Instant::now();
        // Admission first: refuse typed rather than accept work the
        // server cannot finish. Peer key = requested destination host
        // (the accept side only exposes a loopback address).
        if self.admission.lock().try_admit(&host).is_err() {
            self.stats.busy_rejected.inc();
            self.stats
                .connect_req_ns
                .record(started.elapsed().as_nanos() as u64);
            let _ = Msg::Busy.write_to(&mut client);
            return;
        }
        let dialed = interpose(
            self.cfg.dial_hook.as_ref(),
            DialLeg::OuterData,
            &self.cfg.host,
            &host,
            port,
            self.net.dial(&self.cfg.host, &host, port),
        );
        match dialed {
            Ok(target) => {
                if (Msg::ConnectRep {
                    ok: true,
                    detail: String::new(),
                })
                .write_to(&mut client)
                .is_ok()
                {
                    self.stats.connects_ok.inc();
                    self.stats
                        .connect_req_ns
                        .record(started.elapsed().as_nanos() as u64);
                    self.spawn_tracked_pump(host, client, target);
                    return;
                }
                self.admission.lock().release(&host);
            }
            Err(e) => {
                self.stats.connects_failed.inc();
                self.stats
                    .connect_req_ns
                    .record(started.elapsed().as_nanos() as u64);
                let _ = Msg::ConnectRep {
                    ok: false,
                    detail: e.to_string(),
                }
                .write_to(&mut client);
                self.admission.lock().release(&host);
            }
        }
    }

    /// Register the pair in the relay table and pump it on a background
    /// thread. On pump exit the entry is GC'd and the admission slot
    /// released — half-open pairs the reaper resets exit the same way.
    fn spawn_tracked_pump(&self, peer: String, a: TcpStream, b: TcpStream) {
        let id = self.relay_seq.fetch_add(1, Ordering::Relaxed);
        let activity = RelayActivity::new();
        activity.touch();
        if let (Ok(ca), Ok(cb)) = (a.try_clone(), b.try_clone()) {
            self.relays.lock().insert(
                id,
                RelayEntry {
                    a: ca,
                    b: cb,
                    activity: activity.clone(),
                    reaped: false,
                },
            );
            self.stats.active_relays.add(1);
        }
        match &self.reactor {
            Some(reactor) => {
                // Multiplexed path: hand the pair to a reactor thread;
                // the completion callback GCs the table entry and
                // releases the admission slot.
                let ctx = self.clone();
                reactor.register(a, b, activity, move || {
                    if ctx.relays.lock().remove(&id).is_some() {
                        ctx.stats.active_relays.add(-1);
                    }
                    ctx.admission.lock().release(&peer);
                });
            }
            None => {
                let ctx = self.clone();
                thread::spawn(move || {
                    pump_pooled(
                        a,
                        b,
                        ctx.cfg.chunk,
                        ctx.stats.clone(),
                        Some(activity),
                        &ctx.pool,
                    );
                    if ctx.relays.lock().remove(&id).is_some() {
                        ctx.stats.active_relays.add(-1);
                    }
                    ctx.admission.lock().release(&peer);
                });
            }
        }
    }

    /// Sweep the relay table, resetting pairs idle past the timeout.
    /// The pump threads then unblock and GC their own entries.
    fn reaper_loop(&self) {
        let tick = (self.cfg.idle_timeout / 4)
            .min(Duration::from_millis(25))
            .max(Duration::from_millis(1));
        while !self.shutdown.load(Ordering::Relaxed) {
            thread::sleep(tick); // lint:allow(bare-sleep) — shutdown-checked reaper tick.
            let mut table = self.relays.lock();
            for entry in table.values_mut() {
                if !entry.reaped && entry.activity.idle_for() > self.cfg.idle_timeout {
                    entry.reaped = true;
                    let _ = entry.a.shutdown(Shutdown::Both);
                    let _ = entry.b.shutdown(Shutdown::Both);
                    self.stats.idle_reaped.inc();
                }
            }
        }
    }

    /// Push the current bind table to the inner server. Returns the rdv
    /// generation the snapshot was taken at (reads the generation
    /// *before* the table, so concurrent changes trigger a re-sync).
    fn sync_binds(&self, s: &mut TcpStream) -> io::Result<u64> {
        let gen = self.rdv_gen.load(Ordering::Relaxed);
        let mut binds: Vec<(String, u16)> = self.rdv.lock().values().cloned().collect();
        binds.sort();
        Msg::BindSync { binds }.write_to(s)?;
        self.stats.bind_syncs.inc();
        Ok(gen)
    }

    /// Announce the shard map on the control session. Same honesty
    /// discipline as [`sync_binds`](Self::sync_binds): generation read
    /// before the member snapshot, so a racing install makes the
    /// announced generation stale (re-sent next tick), never fresh for
    /// an old list. No-op returning 0 outside a fleet.
    fn sync_shard_map(&self, s: &mut TcpStream) -> io::Result<u64> {
        let Some(fleet) = &self.fleet else {
            return Ok(0);
        };
        let gen = fleet.gen.load(Ordering::Acquire);
        let members = fleet.members.lock().clone();
        Msg::ShardSync {
            gen,
            sender: fleet.self_index as u16,
            members,
        }
        .write_to(s)?;
        fleet.stats.map_syncs.inc();
        Ok(gen)
    }

    /// Keep a control session to the inner server: Ping/Pong liveness,
    /// BindSync on (re)connect and on bind-table changes. A silent or
    /// dead inner server breaks the session; each re-established
    /// session counts as a reconnect and immediately re-registers all
    /// live binds — the recovery path the kill-the-inner test drives.
    fn heartbeat_loop(&self) {
        let Some(hb) = self.cfg.heartbeat else { return };
        let Some((inner_host, nxport)) = self.cfg.inner.clone() else {
            return;
        };
        let mut ever_alive = false;
        while !self.shutdown.load(Ordering::Relaxed) {
            if !self.breaker.allow() {
                thread::sleep(hb.interval); // lint:allow(bare-sleep) — heartbeat interval.
                continue;
            }
            let dialed = interpose(
                self.cfg.dial_hook.as_ref(),
                DialLeg::Heartbeat,
                &self.cfg.host,
                &inner_host,
                nxport,
                self.net.dial(&self.cfg.host, &inner_host, nxport),
            )
            .and_then(|s| {
                s.set_read_timeout(Some(hb.timeout))?;
                Ok(s)
            });
            let mut s = match dialed {
                Ok(s) => {
                    self.breaker.on_success();
                    s
                }
                Err(_) => {
                    self.breaker.on_failure();
                    thread::sleep(hb.interval); // lint:allow(bare-sleep) — heartbeat interval.
                    continue;
                }
            };
            self.stats.inner_alive.set(1);
            if ever_alive {
                self.stats.inner_reconnects.inc();
            }
            ever_alive = true;

            // Shard map first (it names the authorization slice the
            // BindSync lands in), then a full bind-table push, on
            // every (re)connect; then ping at the configured interval,
            // re-syncing whichever generation moved.
            let mut shard_gen = self.sync_shard_map(&mut s).unwrap_or_default();
            let mut synced_gen = self.sync_binds(&mut s).unwrap_or_default();
            let mut seq: u32 = 0;
            loop {
                if self.shutdown.load(Ordering::Relaxed) {
                    let _ = s.shutdown(Shutdown::Both);
                    self.stats.inner_alive.set(0);
                    return;
                }
                if let Some(fleet) = &self.fleet {
                    if fleet.gen.load(Ordering::Acquire) != shard_gen {
                        match self.sync_shard_map(&mut s) {
                            Ok(g) => shard_gen = g,
                            Err(_) => break,
                        }
                    }
                }
                let gen = self.rdv_gen.load(Ordering::Relaxed);
                if gen != synced_gen {
                    match self.sync_binds(&mut s) {
                        Ok(g) => synced_gen = g,
                        Err(_) => break,
                    }
                }
                seq = seq.wrapping_add(1);
                if (Msg::Ping { seq }).write_to(&mut s).is_err() {
                    break;
                }
                self.stats.hb_pings.inc();
                match Msg::read_from(&mut s) {
                    Ok(Msg::Pong { .. }) => self.stats.hb_pongs.inc(),
                    // Timeout, EOF or garbage: the peer is dead.
                    _ => break,
                }
                thread::sleep(hb.interval); // lint:allow(bare-sleep) — heartbeat interval.
            }
            // Session broke while the peer was considered alive.
            self.stats.inner_alive.set(0);
            self.stats.inner_deaths.inc();
        }
    }

    /// Fig. 4 steps 1-2: allocate a rendezvous port for the client and
    /// relay arriving peers through the inner server. The registration
    /// lives as long as the client keeps its control connection open.
    fn handle_bind(
        &self,
        mut ctrl: TcpStream,
        client_host: String,
        client_port: u16,
        fallback: bool,
    ) {
        let started = Instant::now();
        // Fleet routing: only the HRW owner of this bind key serves
        // it; everyone else answers with the owner's control address,
        // so clients with a stale map converge in one hop. Exception:
        // a `fallback` request means the client could not reach the
        // owner — serve it here rather than bounce it back to a dead
        // shard.
        if let Some(fleet) = &self.fleet {
            let key = bind_key(&client_host, client_port);
            let (map, members) = fleet.shard_map();
            match map.route(fleet.self_index, &key) {
                Some(ShardRoute::Own) => fleet.stats.binds_owned.inc(),
                Some(ShardRoute::Redirect(owner)) if !fallback => {
                    fleet.stats.redirects_sent.inc();
                    let (host, port) = members[owner].clone();
                    let _ = Msg::Redirect { host, port }.write_to(&mut ctrl);
                    return;
                }
                Some(ShardRoute::Redirect(_)) => { /* fallback serve */ }
                // Self not in the map (superseded membership): refuse.
                None => {
                    let _ = Msg::BindRep { rdv_port: 0 }.write_to(&mut ctrl);
                    return;
                }
            }
        }
        let listener = match self.net.bind(&self.cfg.host, 0) {
            Ok(l) => l,
            Err(_) => {
                let _ = Msg::BindRep { rdv_port: 0 }.write_to(&mut ctrl);
                return;
            }
        };
        if listener.set_nonblocking(true).is_err() {
            let _ = Msg::BindRep { rdv_port: 0 }.write_to(&mut ctrl);
            return;
        }
        let rdv_port = listener.logical_port();
        // Register before acknowledging, so a client that acts on the
        // BindRep immediately observes a live rendezvous.
        self.rdv
            .lock()
            .insert(rdv_port, (client_host.clone(), client_port));
        self.rdv_gen.fetch_add(1, Ordering::Relaxed);
        self.stats.binds.inc();
        if (Msg::BindRep { rdv_port }).write_to(&mut ctrl).is_err() {
            self.rdv.lock().remove(&rdv_port);
            self.rdv_gen.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.stats
            .bind_req_ns
            .record(started.elapsed().as_nanos() as u64);

        // Watch the control connection: EOF ends the registration.
        let done = Arc::new(AtomicBool::new(false));
        {
            let done = done.clone();
            let mut ctrl = ctrl;
            thread::spawn(move || {
                let mut scratch = [0u8; 16];
                loop {
                    match io::Read::read(&mut ctrl, &mut scratch) {
                        Ok(0) | Err(_) => break,
                        Ok(_) => { /* clients don't speak after bind */ }
                    }
                }
                done.store(true, Ordering::Relaxed);
            });
        }

        // Accept peers on the rendezvous port.
        let ctx = self.clone();
        thread::spawn(move || {
            let listener = listener; // owned: drop unregisters
            while !done.load(Ordering::Relaxed) && !ctx.shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((peer, _)) => {
                        peer.set_nonblocking(false).ok();
                        ctx.bridge_peer(peer, &client_host, client_port);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
            // Unbind before withdrawing the registry entry so that
            // observers who see the port gone can rely on new dials
            // failing.
            drop(listener);
            ctx.rdv.lock().remove(&rdv_port);
            ctx.rdv_gen.fetch_add(1, Ordering::Relaxed);
        });
    }

    /// Fig. 4 steps 4-5: a peer arrived; reach the client through the
    /// inner server (or directly when no inner server is configured).
    fn bridge_peer(&self, peer: TcpStream, client_host: &str, client_port: u16) {
        let started = Instant::now();
        // Admission keyed by the registered client: one overloaded
        // bound endpoint cannot starve the rest of the table.
        if self.admission.lock().try_admit(client_host).is_err() {
            self.stats.busy_rejected.inc();
            // `peer` is a raw data stream (it never spoke the control
            // protocol), so the refusal is a reset, not a Busy frame.
            return;
        }
        let inward = match &self.cfg.inner {
            Some((inner_host, nxport)) => {
                if self.breaker.allow() {
                    // The breaker watches the WAN dial leg only: an
                    // established TCP connection proves the inner
                    // server answers, whatever it then replies.
                    let dialed = interpose(
                        self.cfg.dial_hook.as_ref(),
                        DialLeg::OuterToInner,
                        &self.cfg.host,
                        inner_host,
                        *nxport,
                        self.net.dial(&self.cfg.host, inner_host, *nxport),
                    );
                    match &dialed {
                        Ok(_) => self.breaker.on_success(),
                        Err(_) => self.breaker.on_failure(),
                    }
                    dialed.and_then(|mut inner| {
                        Msg::RelayReq {
                            host: client_host.to_string(),
                            port: client_port,
                        }
                        .write_to(&mut inner)?;
                        match Msg::read_from(&mut inner)? {
                            Msg::RelayRep { ok: true } => Ok(inner),
                            Msg::RelayRep { ok: false } => Err(io::Error::new(
                                io::ErrorKind::ConnectionRefused,
                                "inner server could not reach client",
                            )),
                            _ => Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "unexpected inner reply",
                            )),
                        }
                    })
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::ConnectionRefused,
                        "circuit breaker open: inner server dials suspended",
                    ))
                }
            }
            None => interpose(
                self.cfg.dial_hook.as_ref(),
                DialLeg::OuterData,
                &self.cfg.host,
                client_host,
                client_port,
                self.net.dial(&self.cfg.host, client_host, client_port),
            ),
        };
        self.stats
            .relay_bridge_ns
            .record(started.elapsed().as_nanos() as u64);
        match inward {
            Ok(inward) => {
                self.stats.relays_ok.inc();
                self.spawn_tracked_pump(client_host.to_string(), peer, inward);
            }
            Err(_) => {
                self.stats.relays_failed.inc();
                self.admission.lock().release(client_host);
                // Dropping `peer` resets the rendezvous connection.
            }
        }
    }
}
