//! The inner server as a simulation actor.

use super::{ProxyMsg, RelayCore, RelayModel, CTRL_MSG_BYTES, RELAY_TIMER};
use crate::shard::ShardStats;
use netsim::prelude::*;
use std::collections::{HashMap, HashSet};
use wacs_obs::{Counter, Histogram, Registry};

/// Authorization slice name: the announcing shard's control endpoint,
/// or `None` for sessions that never sent a `ShardSync` (single-outer
/// deployments — the legacy solo slice).
type SliceKey = Option<(NodeId, u16)>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Accepted from the outer server; waiting for `RelayReq`.
    AwaitRelayReq,
    /// Dialing the client; the map value in `dials` holds the outer leg.
    Relayed,
    /// Outer-server control session (heartbeats + bind syncs).
    Control,
}

/// Registry handles for the inner server's control plane.
struct InnerObs {
    /// RelayReq arrival → client dial resolved (either way).
    relay_dial_ns: Histogram,
    relays_ok: Counter,
    relays_failed: Counter,
    hb_pings: Counter,
    hb_pongs: Counter,
    bind_syncs: Counter,
    relays_unauthorized: Counter,
}

/// The inner server actor. Spawn it on a host *inside* the firewall;
/// it listens on `nxport` — the single inbound hole.
pub struct SimInnerServer {
    nxport: u16,
    relay: RelayCore,
    roles: HashMap<FlowId, Role>,
    /// connect token → (outer-side flow awaiting completion, RelayReq
    /// arrival time).
    dials: HashMap<u64, (FlowId, SimTime)>,
    next_token: u64,
    /// Refuse `RelayReq` for endpoints absent from the synced bind
    /// table. A restarted inner server starts with an *empty* table:
    /// it relays nothing until the outer server re-syncs.
    require_registration: bool,
    /// Authorization table, sliced per announcing shard (DESIGN.md
    /// §6d): each shard's `BindSync` replaces only its own slice, so N
    /// outer shards cannot clobber each other's registrations.
    slices: HashMap<SliceKey, HashSet<(NodeId, u16)>>,
    /// Control flow → the slice its `ShardSync` claimed.
    session_slice: HashMap<FlowId, (NodeId, u16)>,
    /// Highest shard-map generation installed so far (0 = none).
    fleet_gen: u64,
    fleet: Vec<(NodeId, u16)>,
    obs: Option<InnerObs>,
    shard_obs: Option<ShardStats>,
}

impl SimInnerServer {
    pub fn new(nxport: u16, model: RelayModel) -> Self {
        SimInnerServer {
            nxport,
            relay: RelayCore::new(model),
            roles: HashMap::new(),
            dials: HashMap::new(),
            next_token: 0,
            require_registration: false,
            slices: HashMap::new(),
            session_slice: HashMap::new(),
            fleet_gen: 0,
            fleet: Vec::new(),
            obs: None,
            shard_obs: None,
        }
    }

    /// Only relay endpoints announced via `BindSync` (the sim twin of
    /// `InnerConfig::with_registration_required`).
    pub fn with_registration_required(mut self) -> Self {
        self.require_registration = true;
        self
    }

    /// Record control-plane spans and counters under `proxy.inner.*`
    /// (and the relay data path under the same prefix) in `registry`.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.relay.set_obs(registry, "proxy.inner");
        let c = |n: &str| registry.counter(&format!("proxy.inner.{n}"));
        self.obs = Some(InnerObs {
            relay_dial_ns: registry.histogram("proxy.inner.relay_dial_ns"),
            relays_ok: c("relays_ok"),
            relays_failed: c("relays_failed"),
            hb_pings: c("hb_pings"),
            hb_pongs: c("hb_pongs"),
            bind_syncs: c("bind_syncs"),
            relays_unauthorized: c("relays_unauthorized"),
        });
        self.shard_obs = Some(ShardStats::in_registry(registry));
        self
    }

    pub fn forwarded(&self) -> u64 {
        self.relay.forwarded
    }

    /// Endpoints currently announced via `BindSync`, the union over
    /// every shard's slice (sorted, deduplicated).
    pub fn authorized_endpoints(&self) -> Vec<(NodeId, u16)> {
        let mut v: Vec<(NodeId, u16)> = self.slices.values().flatten().copied().collect();
        v.sort();
        v.dedup();
        v
    }

    /// The installed fleet view: `(generation, members)`.
    pub fn fleet_view(&self) -> (u64, Vec<(NodeId, u16)>) {
        (self.fleet_gen, self.fleet.clone())
    }

    fn is_authorized(&self, ep: &(NodeId, u16)) -> bool {
        self.slices.values().any(|s| s.contains(ep))
    }

    /// Handle one frame on an established control session.
    fn on_control(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, msg: ProxyMsg) {
        match msg {
            ProxyMsg::Ping { seq } => {
                if let Some(o) = &self.obs {
                    o.hb_pings.inc();
                }
                let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::Pong { seq });
                if let Some(o) = &self.obs {
                    o.hb_pongs.inc();
                }
            }
            ProxyMsg::BindSync { binds } => {
                ctx.trace(|| format!("inner: BindSync with {} endpoints", binds.len()));
                let key = self.session_slice.get(&flow).copied();
                self.slices.insert(key, binds.into_iter().collect());
                if let Some(o) = &self.obs {
                    o.bind_syncs.inc();
                }
            }
            ProxyMsg::ShardSync {
                gen,
                sender,
                members,
            } => {
                // Session identity first: even a stale map names its
                // sender (endpoints are stable across shard restarts,
                // so a replaced shard reclaims its old slice).
                if let Some(&ep) = members.get(sender as usize) {
                    self.session_slice.insert(flow, ep);
                }
                if gen > self.fleet_gen {
                    // Authorizations of shards no longer in the map
                    // die with their membership.
                    let keep: HashSet<(NodeId, u16)> = members.iter().copied().collect();
                    self.slices
                        .retain(|k, _| k.is_none_or(|ep| keep.contains(&ep)));
                    self.fleet_gen = gen;
                    self.fleet = members;
                    if let Some(s) = &self.shard_obs {
                        s.map_syncs.inc();
                        s.map_generation.set(gen as i64);
                    }
                }
            }
            other => {
                ctx.trace(|| format!("inner: unexpected control frame {other:?}"));
                ctx.close(flow);
            }
        }
    }
}

impl Actor for SimInnerServer {
    fn name(&self) -> &str {
        "inner-server"
    }

    // A taken nxport means the site is misconfigured; aborting with the
    // port in the message is the most useful diagnostic the sim can give.
    #[allow(clippy::expect_used)]
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.nxport).expect("inner server nxport in use"); // lint:allow(unwrap-panic)
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RELAY_TIMER {
            self.relay.on_timer(ctx);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        match ev {
            FlowEvent::Accepted { flow, .. } => {
                self.roles.insert(flow, Role::AwaitRelayReq);
            }
            FlowEvent::Connected { flow, token, .. } => {
                if let Some((outer_leg, started)) = self.dials.remove(&token) {
                    // Reached the client: confirm to the outer server
                    // and bridge.
                    self.roles.insert(outer_leg, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.relays_ok.inc();
                        o.relay_dial_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(outer_leg, CTRL_MSG_BYTES, ProxyMsg::RelayRep { ok: true });
                    self.relay.pair(ctx, outer_leg, flow);
                }
            }
            FlowEvent::Refused { token, .. } => {
                if let Some((outer_leg, started)) = self.dials.remove(&token) {
                    if let Some(o) = &self.obs {
                        o.relays_failed.inc();
                        o.relay_dial_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(outer_leg, CTRL_MSG_BYTES, ProxyMsg::RelayRep { ok: false });
                    ctx.close(outer_leg);
                }
            }
            FlowEvent::Closed { flow, .. } => {
                self.roles.remove(&flow);
                self.session_slice.remove(&flow);
                if let Some(pair) = self.relay.on_closed(ctx, flow) {
                    self.roles.remove(&pair);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let flow = msg.flow;
        match self.roles.get(&flow).copied() {
            Some(Role::AwaitRelayReq) => match msg.expect::<ProxyMsg>() {
                ProxyMsg::RelayReq { client } => {
                    ctx.trace(|| {
                        format!("inner: RelayReq for client {client:?} on flow {}", flow.0)
                    });
                    if self.require_registration && !self.is_authorized(&client) {
                        if let Some(o) = &self.obs {
                            o.relays_unauthorized.inc();
                            o.relays_failed.inc();
                        }
                        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::RelayRep { ok: false });
                        ctx.close(flow);
                        return;
                    }
                    let tok = self.next_token;
                    self.next_token += 1;
                    self.dials.insert(tok, (flow, ctx.now()));
                    ctx.connect(client, tok);
                }
                // First frame is Ping/BindSync/ShardSync: an
                // outer-server control session, not a relay.
                first @ (ProxyMsg::Ping { .. }
                | ProxyMsg::BindSync { .. }
                | ProxyMsg::ShardSync { .. }) => {
                    self.roles.insert(flow, Role::Control);
                    self.on_control(ctx, flow, first);
                }
                other => {
                    ctx.trace(|| format!("inner: unexpected {other:?}"));
                    ctx.close(flow);
                }
            },
            Some(Role::Control) => {
                let m = msg.expect::<ProxyMsg>();
                self.on_control(ctx, flow, m);
            }
            Some(Role::Relayed) => {
                self.relay
                    .on_data(ctx, flow, msg.size, msg.payload, msg.sent_at);
            }
            None => {}
        }
    }
}
