//! The outer server as a simulation actor.

use super::{ProxyMsg, RelayCore, RelayModel, CTRL_MSG_BYTES, RELAY_TIMER};
use netsim::prelude::*;
use std::collections::HashMap;

/// Per-flow role tracking on the outer server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Accepted on the control port; waiting for the first request.
    AwaitRequest,
    /// Control connection that performed a bind; owns a rendezvous port.
    BindControl { rdv_port: u16 },
    /// A peer that connected to a rendezvous port; being bridged.
    PeerPending,
    /// Outbound leg toward the inner server; waiting for RelayRep.
    AwaitRelayRep { peer: FlowId },
    /// Fully relayed (either side).
    Relayed,
}

/// What an in-flight `connect` of ours is for.
enum Dial {
    /// Active open on behalf of `client` (Fig. 3).
    Target { client: FlowId },
    /// Inner-server leg for a rendezvous `peer` (Fig. 4).
    Inner { peer: FlowId, client: (NodeId, u16) },
    /// Direct dial back to a bound client (no inner server configured).
    DirectClient { peer: FlowId },
}

/// The outer server actor. Spawn it on a host *outside* the firewall.
pub struct SimOuterServer {
    ctrl_port: u16,
    /// `(inner_host, nxport)`; `None` = dial bound clients directly.
    inner: Option<(NodeId, u16)>,
    relay: RelayCore,
    roles: HashMap<FlowId, Role>,
    /// rendezvous port → private endpoint of the registered client.
    rdv: HashMap<u16, (NodeId, u16)>,
    dials: HashMap<u64, Dial>,
    next_token: u64,
}

impl SimOuterServer {
    pub fn new(ctrl_port: u16, inner: Option<(NodeId, u16)>, model: RelayModel) -> Self {
        SimOuterServer {
            ctrl_port,
            inner,
            relay: RelayCore::new(model),
            roles: HashMap::new(),
            rdv: HashMap::new(),
            dials: HashMap::new(),
            next_token: 0,
        }
    }

    /// Messages forwarded so far (diagnostics for tests/benches).
    pub fn forwarded(&self) -> u64 {
        self.relay.forwarded
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, msg: ProxyMsg) {
        match msg {
            ProxyMsg::ConnectReq { dst } => {
                ctx.trace(|| format!("outer: ConnectReq flow={} -> {:?}", flow.0, dst));
                let tok = self.token();
                self.dials.insert(tok, Dial::Target { client: flow });
                ctx.connect(dst, tok);
            }
            ProxyMsg::BindReq { client } => match ctx.listen(0) {
                Ok(port) => {
                    ctx.trace(|| format!("outer: BindReq client={client:?} -> rdv port {port}"));
                    self.rdv.insert(port, client);
                    self.roles
                        .insert(flow, Role::BindControl { rdv_port: port });
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: port });
                }
                Err(_) => {
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: 0 });
                }
            },
            other => {
                ctx.trace(|| format!("outer: unexpected request {other:?}"));
                ctx.close(flow);
            }
        }
    }
}

impl Actor for SimOuterServer {
    fn name(&self) -> &str {
        "outer-server"
    }

    // A taken control port means the DMZ host is misconfigured; abort
    // loudly rather than run a proxy nobody can reach.
    #[allow(clippy::expect_used)]
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.ctrl_port)
            .expect("outer server control port in use"); // lint:allow(unwrap-panic)
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RELAY_TIMER {
            self.relay.on_timer(ctx);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        match ev {
            FlowEvent::Accepted {
                flow, listen_port, ..
            } => {
                if listen_port == self.ctrl_port {
                    self.roles.insert(flow, Role::AwaitRequest);
                } else if let Some(&client) = self.rdv.get(&listen_port) {
                    // Fig. 4 step 3: a peer hit the rendezvous port.
                    self.roles.insert(flow, Role::PeerPending);
                    let tok = self.token();
                    match self.inner {
                        Some(inner_addr) => {
                            ctx.trace(|| {
                                format!(
                                    "outer: peer flow={} on rdv:{listen_port}, dialing inner",
                                    flow.0
                                )
                            });
                            self.dials.insert(tok, Dial::Inner { peer: flow, client });
                            ctx.connect(inner_addr, tok);
                        }
                        None => {
                            self.dials.insert(tok, Dial::DirectClient { peer: flow });
                            ctx.connect(client, tok);
                        }
                    }
                } else {
                    // Rendezvous registration vanished between SYN and
                    // accept: refuse by closing.
                    ctx.close(flow);
                }
            }
            FlowEvent::Connected { flow, token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client }) => {
                    self.roles.insert(client, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: true });
                    self.relay.pair(ctx, client, flow);
                }
                Some(Dial::Inner { peer, client }) => {
                    // Fig. 4 step 4: ask the inner server to complete.
                    self.roles.insert(flow, Role::AwaitRelayRep { peer });
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::RelayReq { client });
                }
                Some(Dial::DirectClient { peer }) => {
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    self.relay.pair(ctx, peer, flow);
                }
                None => ctx.close(flow),
            },
            FlowEvent::Refused { token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client }) => {
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: false });
                    ctx.close(client);
                }
                Some(Dial::Inner { peer, .. }) | Some(Dial::DirectClient { peer }) => {
                    ctx.close(peer);
                }
                None => {}
            },
            FlowEvent::Closed { flow, .. } => {
                if let Some(Role::BindControl { rdv_port }) = self.roles.remove(&flow) {
                    // Registration lifetime = control connection lifetime.
                    self.rdv.remove(&rdv_port);
                    ctx.unlisten(rdv_port);
                }
                if let Some(pair) = self.relay.on_closed(ctx, flow) {
                    self.roles.remove(&pair);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let flow = msg.flow;
        match self.roles.get(&flow).copied() {
            Some(Role::AwaitRequest) => {
                let m = msg.expect::<ProxyMsg>();
                self.handle_request(ctx, flow, m);
            }
            Some(Role::AwaitRelayRep { peer }) => match msg.expect::<ProxyMsg>() {
                ProxyMsg::RelayRep { ok: true } => {
                    // Fig. 4 step 5 complete: bridge peer ↔ inner leg.
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    self.relay.pair(ctx, peer, flow);
                }
                _ => {
                    ctx.close(peer);
                    ctx.close(flow);
                }
            },
            Some(Role::Relayed) | Some(Role::PeerPending) => {
                // Opaque relay traffic (PeerPending: early data from an
                // eager peer — buffered by the core until paired).
                self.relay.on_data(ctx, flow, msg.size, msg.payload);
            }
            Some(Role::BindControl { .. }) => {
                // Clients don't speak on a bind control connection.
            }
            None => {}
        }
    }
}
