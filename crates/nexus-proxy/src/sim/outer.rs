//! The outer server as a simulation actor.

use super::{ProxyMsg, RelayCore, RelayModel, CTRL_MSG_BYTES, RELAY_TIMER};
use netsim::prelude::*;
use std::collections::HashMap;
use wacs_obs::{Counter, Histogram, Registry};

/// Per-flow role tracking on the outer server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Accepted on the control port; waiting for the first request.
    AwaitRequest,
    /// Control connection that performed a bind; owns a rendezvous port.
    BindControl { rdv_port: u16 },
    /// A peer that connected to a rendezvous port; being bridged.
    PeerPending,
    /// Outbound leg toward the inner server; waiting for RelayRep.
    /// `started` = when the peer hit the rendezvous port.
    AwaitRelayRep { peer: FlowId, started: SimTime },
    /// Fully relayed (either side).
    Relayed,
}

/// What an in-flight `connect` of ours is for. `started` timestamps
/// the request that triggered the dial, for service-time spans.
enum Dial {
    /// Active open on behalf of `client` (Fig. 3).
    Target { client: FlowId, started: SimTime },
    /// Inner-server leg for a rendezvous `peer` (Fig. 4).
    Inner {
        peer: FlowId,
        client: (NodeId, u16),
        started: SimTime,
    },
    /// Direct dial back to a bound client (no inner server configured).
    DirectClient { peer: FlowId, started: SimTime },
}

/// Registry handles for the outer server's control-plane spans.
struct OuterObs {
    /// ConnectReq arrival → ConnectRep sent (or refusal).
    connect_req_ns: Histogram,
    /// BindReq service (synchronous in the sim: always 0, kept for
    /// schema parity with the real path).
    bind_req_ns: Histogram,
    /// Peer hits the rendezvous port → streams bridged.
    rendezvous_ns: Histogram,
    connects_ok: Counter,
    connects_failed: Counter,
    binds: Counter,
    relays_ok: Counter,
    relays_failed: Counter,
}

/// The outer server actor. Spawn it on a host *outside* the firewall.
pub struct SimOuterServer {
    ctrl_port: u16,
    /// `(inner_host, nxport)`; `None` = dial bound clients directly.
    inner: Option<(NodeId, u16)>,
    relay: RelayCore,
    roles: HashMap<FlowId, Role>,
    /// rendezvous port → private endpoint of the registered client.
    rdv: HashMap<u16, (NodeId, u16)>,
    dials: HashMap<u64, Dial>,
    next_token: u64,
    obs: Option<OuterObs>,
}

impl SimOuterServer {
    pub fn new(ctrl_port: u16, inner: Option<(NodeId, u16)>, model: RelayModel) -> Self {
        SimOuterServer {
            ctrl_port,
            inner,
            relay: RelayCore::new(model),
            roles: HashMap::new(),
            rdv: HashMap::new(),
            dials: HashMap::new(),
            next_token: 0,
            obs: None,
        }
    }

    /// Record control-plane spans and counters under `proxy.outer.*`
    /// (and the relay data path under the same prefix) in `registry`.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.relay.set_obs(registry, "proxy.outer");
        let c = |n: &str| registry.counter(&format!("proxy.outer.{n}"));
        let h = |n: &str| registry.histogram(&format!("proxy.outer.{n}"));
        self.obs = Some(OuterObs {
            connect_req_ns: h("connect_req_ns"),
            bind_req_ns: h("bind_req_ns"),
            rendezvous_ns: h("rendezvous_ns"),
            connects_ok: c("connects_ok"),
            connects_failed: c("connects_failed"),
            binds: c("binds"),
            relays_ok: c("relays_ok"),
            relays_failed: c("relays_failed"),
        });
        self
    }

    /// Messages forwarded so far (diagnostics for tests/benches).
    pub fn forwarded(&self) -> u64 {
        self.relay.forwarded
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, msg: ProxyMsg) {
        match msg {
            ProxyMsg::ConnectReq { dst } => {
                ctx.trace(|| format!("outer: ConnectReq flow={} -> {:?}", flow.0, dst));
                let tok = self.token();
                self.dials.insert(
                    tok,
                    Dial::Target {
                        client: flow,
                        started: ctx.now(),
                    },
                );
                ctx.connect(dst, tok);
            }
            ProxyMsg::BindReq { client } => match ctx.listen(0) {
                Ok(port) => {
                    ctx.trace(|| format!("outer: BindReq client={client:?} -> rdv port {port}"));
                    self.rdv.insert(port, client);
                    self.roles
                        .insert(flow, Role::BindControl { rdv_port: port });
                    if let Some(o) = &self.obs {
                        o.binds.inc();
                        // Served within one event: zero virtual time.
                        o.bind_req_ns.record(0);
                    }
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: port });
                }
                Err(_) => {
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: 0 });
                }
            },
            other => {
                ctx.trace(|| format!("outer: unexpected request {other:?}"));
                ctx.close(flow);
            }
        }
    }
}

impl Actor for SimOuterServer {
    fn name(&self) -> &str {
        "outer-server"
    }

    // A taken control port means the DMZ host is misconfigured; abort
    // loudly rather than run a proxy nobody can reach.
    #[allow(clippy::expect_used)]
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.ctrl_port)
            .expect("outer server control port in use"); // lint:allow(unwrap-panic)
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RELAY_TIMER {
            self.relay.on_timer(ctx);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        match ev {
            FlowEvent::Accepted {
                flow, listen_port, ..
            } => {
                if listen_port == self.ctrl_port {
                    self.roles.insert(flow, Role::AwaitRequest);
                } else if let Some(&client) = self.rdv.get(&listen_port) {
                    // Fig. 4 step 3: a peer hit the rendezvous port.
                    self.roles.insert(flow, Role::PeerPending);
                    let tok = self.token();
                    let started = ctx.now();
                    match self.inner {
                        Some(inner_addr) => {
                            ctx.trace(|| {
                                format!(
                                    "outer: peer flow={} on rdv:{listen_port}, dialing inner",
                                    flow.0
                                )
                            });
                            self.dials.insert(
                                tok,
                                Dial::Inner {
                                    peer: flow,
                                    client,
                                    started,
                                },
                            );
                            ctx.connect(inner_addr, tok);
                        }
                        None => {
                            self.dials.insert(
                                tok,
                                Dial::DirectClient {
                                    peer: flow,
                                    started,
                                },
                            );
                            ctx.connect(client, tok);
                        }
                    }
                } else {
                    // Rendezvous registration vanished between SYN and
                    // accept: refuse by closing.
                    ctx.close(flow);
                }
            }
            FlowEvent::Connected { flow, token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client, started }) => {
                    self.roles.insert(client, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.connects_ok.inc();
                        o.connect_req_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: true });
                    self.relay.pair(ctx, client, flow);
                }
                Some(Dial::Inner {
                    peer,
                    client,
                    started,
                }) => {
                    // Fig. 4 step 4: ask the inner server to complete.
                    self.roles
                        .insert(flow, Role::AwaitRelayRep { peer, started });
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::RelayReq { client });
                }
                Some(Dial::DirectClient { peer, started }) => {
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.relays_ok.inc();
                        o.rendezvous_ns.record(ctx.now().since(started).nanos());
                    }
                    self.relay.pair(ctx, peer, flow);
                }
                None => ctx.close(flow),
            },
            FlowEvent::Refused { token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client, started }) => {
                    if let Some(o) = &self.obs {
                        o.connects_failed.inc();
                        o.connect_req_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: false });
                    ctx.close(client);
                }
                Some(Dial::Inner { peer, .. }) | Some(Dial::DirectClient { peer, .. }) => {
                    if let Some(o) = &self.obs {
                        o.relays_failed.inc();
                    }
                    ctx.close(peer);
                }
                None => {}
            },
            FlowEvent::Closed { flow, .. } => {
                if let Some(Role::BindControl { rdv_port }) = self.roles.remove(&flow) {
                    // Registration lifetime = control connection lifetime.
                    self.rdv.remove(&rdv_port);
                    ctx.unlisten(rdv_port);
                }
                if let Some(pair) = self.relay.on_closed(ctx, flow) {
                    self.roles.remove(&pair);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let flow = msg.flow;
        match self.roles.get(&flow).copied() {
            Some(Role::AwaitRequest) => {
                let m = msg.expect::<ProxyMsg>();
                self.handle_request(ctx, flow, m);
            }
            Some(Role::AwaitRelayRep { peer, started }) => match msg.expect::<ProxyMsg>() {
                ProxyMsg::RelayRep { ok: true } => {
                    // Fig. 4 step 5 complete: bridge peer ↔ inner leg.
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.relays_ok.inc();
                        o.rendezvous_ns.record(ctx.now().since(started).nanos());
                    }
                    self.relay.pair(ctx, peer, flow);
                }
                _ => {
                    if let Some(o) = &self.obs {
                        o.relays_failed.inc();
                    }
                    ctx.close(peer);
                    ctx.close(flow);
                }
            },
            Some(Role::Relayed) | Some(Role::PeerPending) => {
                // Opaque relay traffic (PeerPending: early data from an
                // eager peer — buffered by the core until paired).
                self.relay
                    .on_data(ctx, flow, msg.size, msg.payload, msg.sent_at);
            }
            Some(Role::BindControl { .. }) => {
                // Clients don't speak on a bind control connection.
            }
            None => {}
        }
    }
}
