//! The outer server as a simulation actor.

use super::{
    sim_shard_key, sim_shard_map, ProxyMsg, RelayCore, RelayModel, CTRL_MSG_BYTES, HB_RETRY,
    HB_TICK, RELAY_TIMER,
};
use crate::liveness::{
    AdmissionGate, AdmissionLimits, BreakerConfig, BreakerState, CircuitBreaker, HeartbeatConfig,
    HeartbeatMonitor,
};
use crate::shard::{ShardRoute, ShardStats};
use netsim::prelude::*;
use std::collections::HashMap;
use std::time::Duration;
use wacs_obs::{Counter, Gauge, Histogram, Registry};

fn sd(d: Duration) -> SimDuration {
    SimDuration::from_nanos(d.as_nanos() as u64)
}

/// Per-flow role tracking on the outer server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Accepted on the control port; waiting for the first request.
    AwaitRequest,
    /// Control connection that performed a bind; owns a rendezvous port.
    BindControl { rdv_port: u16 },
    /// A peer that connected to a rendezvous port; being bridged.
    PeerPending,
    /// Outbound leg toward the inner server; waiting for RelayRep.
    /// `started` = when the peer hit the rendezvous port.
    AwaitRelayRep { peer: FlowId, started: SimTime },
    /// Fully relayed (either side).
    Relayed,
    /// The outer→inner heartbeat control session.
    Heartbeat,
}

/// What an in-flight `connect` of ours is for. `started` timestamps
/// the request that triggered the dial, for service-time spans.
enum Dial {
    /// Active open on behalf of `client` (Fig. 3).
    Target { client: FlowId, started: SimTime },
    /// Inner-server leg for a rendezvous `peer` (Fig. 4).
    Inner {
        peer: FlowId,
        client: (NodeId, u16),
        started: SimTime,
    },
    /// Direct dial back to a bound client (no inner server configured).
    DirectClient { peer: FlowId, started: SimTime },
    /// The heartbeat control session toward the inner server.
    Heartbeat,
}

/// Heartbeat + breaker state for the outer→inner control session
/// (mirrors the real path's `ServerCtx::heartbeat_loop`).
struct Liveness {
    hb: HeartbeatConfig,
    breaker: CircuitBreaker,
    /// For open/close edge detection when mirroring into obs.
    last_state: BreakerState,
    /// Live control-session flow, if any.
    flow: Option<FlowId>,
    monitor: Option<HeartbeatMonitor>,
    ever_alive: bool,
    /// The bind table changed since the last BindSync.
    rdv_dirty: bool,
}

/// Registry handles for the outer server's control-plane spans.
struct OuterObs {
    /// ConnectReq arrival → ConnectRep sent (or refusal).
    connect_req_ns: Histogram,
    /// BindReq service (synchronous in the sim: always 0, kept for
    /// schema parity with the real path).
    bind_req_ns: Histogram,
    /// Peer hits the rendezvous port → streams bridged.
    rendezvous_ns: Histogram,
    connects_ok: Counter,
    connects_failed: Counter,
    binds: Counter,
    relays_ok: Counter,
    relays_failed: Counter,
    busy_rejected: Counter,
    hb_pings: Counter,
    hb_pongs: Counter,
    inner_deaths: Counter,
    inner_reconnects: Counter,
    bind_syncs: Counter,
    breaker_opens: Counter,
    breaker_closes: Counter,
    inner_alive: Gauge,
    breaker_state: Gauge,
}

/// Fleet membership of one sim outer shard (DESIGN.md §6d): the
/// generation-counted member list plus a dirty flag driving
/// `ShardSync` re-announcements on the heartbeat session.
struct SimFleet {
    self_index: usize,
    gen: u64,
    members: Vec<(NodeId, u16)>,
    /// The map changed since the last announcement.
    dirty: bool,
}

/// The outer server actor. Spawn it on a host *outside* the firewall.
pub struct SimOuterServer {
    ctrl_port: u16,
    /// `(inner_host, nxport)`; `None` = dial bound clients directly.
    inner: Option<(NodeId, u16)>,
    relay: RelayCore,
    roles: HashMap<FlowId, Role>,
    /// rendezvous port → private endpoint of the registered client.
    rdv: HashMap<u16, (NodeId, u16)>,
    dials: HashMap<u64, Dial>,
    next_token: u64,
    live: Option<Liveness>,
    gate: Option<AdmissionGate>,
    /// Flow → admission key, released exactly once per admitted flow.
    admitted: HashMap<FlowId, String>,
    obs: Option<OuterObs>,
    fleet: Option<SimFleet>,
    shard_obs: Option<ShardStats>,
}

impl SimOuterServer {
    pub fn new(ctrl_port: u16, inner: Option<(NodeId, u16)>, model: RelayModel) -> Self {
        SimOuterServer {
            ctrl_port,
            inner,
            relay: RelayCore::new(model),
            roles: HashMap::new(),
            rdv: HashMap::new(),
            dials: HashMap::new(),
            next_token: 0,
            live: None,
            gate: None,
            admitted: HashMap::new(),
            obs: None,
            fleet: None,
            shard_obs: None,
        }
    }

    /// Run as shard `self_index` of the fleet listed in `members`
    /// (control endpoints, the same list in the same order everywhere)
    /// — the sim twin of `OuterConfig::with_fleet`.
    pub fn with_fleet(mut self, members: Vec<(NodeId, u16)>, self_index: usize) -> Self {
        self.fleet = Some(SimFleet {
            self_index,
            gen: 1,
            members,
            dirty: false,
        });
        self
    }

    /// Enable the heartbeat control session to the inner server (with
    /// a WAN-leg circuit breaker guarding the re-dials) — the sim twin
    /// of `OuterConfig::with_heartbeat`/`with_breaker`.
    pub fn with_liveness(mut self, hb: HeartbeatConfig, br: BreakerConfig) -> Self {
        self.live = Some(Liveness {
            hb,
            breaker: CircuitBreaker::new(br),
            last_state: BreakerState::Closed,
            flow: None,
            monitor: None,
            ever_alive: false,
            rdv_dirty: false,
        });
        self
    }

    /// Bound admission (total + per-peer), refusing with
    /// [`ProxyMsg::Busy`] on the control port.
    pub fn with_admission(mut self, limits: AdmissionLimits) -> Self {
        self.gate = Some(AdmissionGate::new(limits));
        self
    }

    /// Record control-plane spans and counters under `proxy.outer.*`
    /// (and the relay data path under the same prefix) in `registry`.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.relay.set_obs(registry, "proxy.outer");
        let c = |n: &str| registry.counter(&format!("proxy.outer.{n}"));
        let g = |n: &str| registry.gauge(&format!("proxy.outer.{n}"));
        let h = |n: &str| registry.histogram(&format!("proxy.outer.{n}"));
        self.obs = Some(OuterObs {
            connect_req_ns: h("connect_req_ns"),
            bind_req_ns: h("bind_req_ns"),
            rendezvous_ns: h("rendezvous_ns"),
            connects_ok: c("connects_ok"),
            connects_failed: c("connects_failed"),
            binds: c("binds"),
            relays_ok: c("relays_ok"),
            relays_failed: c("relays_failed"),
            busy_rejected: c("busy_rejected"),
            hb_pings: c("hb_pings"),
            hb_pongs: c("hb_pongs"),
            inner_deaths: c("inner_deaths"),
            inner_reconnects: c("inner_reconnects"),
            bind_syncs: c("bind_syncs"),
            breaker_opens: c("breaker_opens"),
            breaker_closes: c("breaker_closes"),
            inner_alive: g("inner_alive"),
            breaker_state: g("breaker_state"),
        });
        if self.fleet.is_some() {
            let s = ShardStats::in_registry(registry);
            s.map_generation.set(1);
            self.shard_obs = Some(s);
        }
        self
    }

    /// Install a strictly newer fleet membership; the heartbeat
    /// session re-announces it on its next tick. `false` = stale.
    pub fn install_fleet(&mut self, generation: u64, members: Vec<(NodeId, u16)>) -> bool {
        let Some(f) = &mut self.fleet else {
            return false;
        };
        if generation <= f.gen {
            return false;
        }
        f.gen = generation;
        f.members = members;
        f.dirty = true;
        if let Some(s) = &self.shard_obs {
            s.map_generation.set(generation as i64);
        }
        true
    }

    /// Messages forwarded so far (diagnostics for tests/benches).
    pub fn forwarded(&self) -> u64 {
        self.relay.forwarded
    }

    /// Current breaker state (diagnostics; `None` without liveness).
    pub fn breaker_state(&self) -> Option<BreakerState> {
        self.live.as_ref().map(|l| l.breaker.state())
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Push breaker transitions into the obs gauge/counters.
    fn mirror_breaker(&mut self) {
        let Some(l) = &mut self.live else { return };
        let st = l.breaker.state();
        if st == l.last_state {
            return;
        }
        l.last_state = st;
        if let Some(o) = &self.obs {
            o.breaker_state.set(st.as_gauge());
            match st {
                BreakerState::Open => o.breaker_opens.inc(),
                BreakerState::Closed => o.breaker_closes.inc(),
                BreakerState::HalfOpen => {}
            }
        }
    }

    /// Dial (or schedule a re-dial of) the inner control session.
    fn dial_heartbeat(&mut self, ctx: &mut Ctx<'_>) {
        let Some(inner_addr) = self.inner else { return };
        let now = ctx.now().nanos();
        let (allowed, retry) = match &mut self.live {
            Some(l) if l.flow.is_none() => (l.breaker.allow(now), l.hb.interval),
            _ => return,
        };
        self.mirror_breaker();
        if allowed {
            let tok = self.token();
            self.dials.insert(tok, Dial::Heartbeat);
            ctx.connect(inner_addr, tok);
        } else {
            ctx.set_timer(sd(retry), HB_RETRY);
        }
    }

    /// Push the full bind table (sorted by rendezvous port, so two
    /// same-seed runs emit identical frames) to the control session.
    fn send_bind_sync(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let mut entries: Vec<(u16, (NodeId, u16))> =
            self.rdv.iter().map(|(p, c)| (*p, *c)).collect();
        entries.sort_by_key(|(p, _)| *p);
        let binds: Vec<(NodeId, u16)> = entries.into_iter().map(|(_, c)| c).collect();
        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindSync { binds });
        if let Some(o) = &self.obs {
            o.bind_syncs.inc();
        }
        if let Some(l) = &mut self.live {
            l.rdv_dirty = false;
        }
    }

    /// Announce the shard map on the control session (fleet only): it
    /// names the slice the following `BindSync` frames belong to, so
    /// it must precede them on every (re)connect.
    fn send_shard_sync(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let Some(f) = &mut self.fleet else { return };
        let _ = ctx.send(
            flow,
            CTRL_MSG_BYTES,
            ProxyMsg::ShardSync {
                gen: f.gen,
                sender: f.self_index as u16,
                members: f.members.clone(),
            },
        );
        f.dirty = false;
        if let Some(s) = &self.shard_obs {
            s.map_syncs.inc();
        }
    }

    fn send_ping(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let seq = match &mut self.live {
            Some(l) => match &mut l.monitor {
                Some(m) => m.next_seq(),
                None => 0,
            },
            None => 0,
        };
        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::Ping { seq });
        if let Some(o) = &self.obs {
            o.hb_pings.inc();
        }
    }

    /// The control session died (silence past the timeout, or the flow
    /// closed under us): count a death, tear the session down, retry.
    fn declare_inner_dead(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, retry: Duration) {
        if let Some(l) = &mut self.live {
            l.flow = None;
            l.monitor = None;
        }
        if let Some(o) = &self.obs {
            o.inner_alive.set(0);
            o.inner_deaths.inc();
        }
        self.roles.remove(&flow);
        ctx.close(flow);
        ctx.set_timer(sd(retry), HB_RETRY);
    }

    fn hb_tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now().nanos();
        let (flow, expired, dirty, interval) = match &self.live {
            Some(l) => match l.flow {
                Some(f) => (
                    f,
                    l.monitor.as_ref().is_some_and(|m| m.expired(now)),
                    l.rdv_dirty,
                    l.hb.interval,
                ),
                // Session already down: HB_RETRY owns recovery.
                None => return,
            },
            None => return,
        };
        if expired {
            ctx.trace(|| format!("outer: heartbeat timeout on flow={}", flow.0));
            self.declare_inner_dead(ctx, flow, interval);
            return;
        }
        if self.fleet.as_ref().is_some_and(|f| f.dirty) {
            self.send_shard_sync(ctx, flow);
        }
        if dirty {
            self.send_bind_sync(ctx, flow);
        }
        self.send_ping(ctx, flow);
        ctx.set_timer(sd(interval), HB_TICK);
    }

    /// Admit `key` through the gate (when configured), remembering the
    /// slot against `flow`. `false` = refused.
    fn admit(&mut self, flow: FlowId, key: String) -> bool {
        let Some(g) = &mut self.gate else { return true };
        if g.try_admit(&key).is_err() {
            if let Some(o) = &self.obs {
                o.busy_rejected.inc();
            }
            return false;
        }
        self.admitted.insert(flow, key);
        true
    }

    /// Release `flow`'s admission slot, exactly once.
    fn release_flow(&mut self, flow: FlowId) {
        if let Some(key) = self.admitted.remove(&flow) {
            if let Some(g) = &mut self.gate {
                g.release(&key);
            }
        }
    }

    fn handle_request(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, msg: ProxyMsg) {
        match msg {
            ProxyMsg::ConnectReq { dst } => {
                ctx.trace(|| format!("outer: ConnectReq flow={} -> {:?}", flow.0, dst));
                if !self.admit(flow, format!("{:?}", dst.0)) {
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::Busy);
                    ctx.close(flow);
                    return;
                }
                let tok = self.token();
                self.dials.insert(
                    tok,
                    Dial::Target {
                        client: flow,
                        started: ctx.now(),
                    },
                );
                ctx.connect(dst, tok);
            }
            ProxyMsg::BindReq { client, fallback } => {
                // Fleet routing: only the HRW owner serves this key;
                // everyone else names the owner in a typed Redirect —
                // unless the client flagged the request as a fallback
                // (owner unreachable), in which case we serve rather
                // than bounce it back to a dead shard.
                if let Some(f) = &self.fleet {
                    let map = sim_shard_map(f.gen, &f.members);
                    match map.route(f.self_index, &sim_shard_key(client)) {
                        Some(ShardRoute::Own) => {
                            if let Some(s) = &self.shard_obs {
                                s.binds_owned.inc();
                            }
                        }
                        Some(ShardRoute::Redirect(_)) if fallback => { /* fallback serve */ }
                        Some(ShardRoute::Redirect(owner)) => {
                            let owner = f.members[owner];
                            if let Some(s) = &self.shard_obs {
                                s.redirects_sent.inc();
                            }
                            let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::Redirect { owner });
                            ctx.close(flow);
                            return;
                        }
                        // Superseded membership: refuse.
                        None => {
                            let _ =
                                ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: 0 });
                            return;
                        }
                    }
                }
                self.handle_bind(ctx, flow, client);
            }
            other => {
                ctx.trace(|| format!("outer: unexpected request {other:?}"));
                ctx.close(flow);
            }
        }
    }

    /// Fig. 4 steps 1-2 (sim): allocate a rendezvous port and register
    /// the client against it.
    fn handle_bind(&mut self, ctx: &mut Ctx<'_>, flow: FlowId, client: (NodeId, u16)) {
        match ctx.listen(0) {
            Ok(port) => {
                ctx.trace(|| format!("outer: BindReq client={client:?} -> rdv port {port}"));
                self.rdv.insert(port, client);
                if let Some(l) = &mut self.live {
                    l.rdv_dirty = true;
                }
                self.roles
                    .insert(flow, Role::BindControl { rdv_port: port });
                if let Some(o) = &self.obs {
                    o.binds.inc();
                    // Served within one event: zero virtual time.
                    o.bind_req_ns.record(0);
                }
                let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: port });
            }
            Err(_) => {
                let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindRep { rdv_port: 0 });
            }
        }
    }
}

impl Actor for SimOuterServer {
    fn name(&self) -> &str {
        "outer-server"
    }

    // A taken control port means the DMZ host is misconfigured; abort
    // loudly rather than run a proxy nobody can reach.
    #[allow(clippy::expect_used)]
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.listen(self.ctrl_port)
            .expect("outer server control port in use"); // lint:allow(unwrap-panic)
        if self.live.is_some() {
            self.dial_heartbeat(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == RELAY_TIMER {
            self.relay.on_timer(ctx);
        } else if token == HB_TICK {
            self.hb_tick(ctx);
        } else if token == HB_RETRY {
            self.dial_heartbeat(ctx);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        match ev {
            FlowEvent::Accepted {
                flow, listen_port, ..
            } => {
                if listen_port == self.ctrl_port {
                    self.roles.insert(flow, Role::AwaitRequest);
                } else if let Some(&client) = self.rdv.get(&listen_port) {
                    // Fig. 4 step 3: a peer hit the rendezvous port.
                    // Admission is keyed by the registered client: one
                    // overloaded bound endpoint cannot starve the rest.
                    if !self.admit(flow, format!("{:?}", client.0)) {
                        ctx.close(flow);
                        return;
                    }
                    self.roles.insert(flow, Role::PeerPending);
                    let tok = self.token();
                    let started = ctx.now();
                    match self.inner {
                        Some(inner_addr) => {
                            ctx.trace(|| {
                                format!(
                                    "outer: peer flow={} on rdv:{listen_port}, dialing inner",
                                    flow.0
                                )
                            });
                            self.dials.insert(
                                tok,
                                Dial::Inner {
                                    peer: flow,
                                    client,
                                    started,
                                },
                            );
                            ctx.connect(inner_addr, tok);
                        }
                        None => {
                            self.dials.insert(
                                tok,
                                Dial::DirectClient {
                                    peer: flow,
                                    started,
                                },
                            );
                            ctx.connect(client, tok);
                        }
                    }
                } else {
                    // Rendezvous registration vanished between SYN and
                    // accept: refuse by closing.
                    ctx.close(flow);
                }
            }
            FlowEvent::Connected { flow, token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client, started }) => {
                    self.roles.insert(client, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.connects_ok.inc();
                        o.connect_req_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: true });
                    self.relay.pair(ctx, client, flow);
                }
                Some(Dial::Inner {
                    peer,
                    client,
                    started,
                }) => {
                    // Fig. 4 step 4: ask the inner server to complete.
                    self.roles
                        .insert(flow, Role::AwaitRelayRep { peer, started });
                    let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::RelayReq { client });
                }
                Some(Dial::DirectClient { peer, started }) => {
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.relays_ok.inc();
                        o.rendezvous_ns.record(ctx.now().since(started).nanos());
                    }
                    self.relay.pair(ctx, peer, flow);
                }
                Some(Dial::Heartbeat) => {
                    ctx.trace(|| format!("outer: heartbeat session up, flow={}", flow.0));
                    let now = ctx.now().nanos();
                    let mut reconnect = false;
                    let mut interval = Duration::ZERO;
                    if let Some(l) = &mut self.live {
                        l.breaker.on_success();
                        reconnect = l.ever_alive;
                        l.ever_alive = true;
                        l.flow = Some(flow);
                        l.monitor = Some(HeartbeatMonitor::new(l.hb, now));
                        interval = l.hb.interval;
                    }
                    self.mirror_breaker();
                    self.roles.insert(flow, Role::Heartbeat);
                    if let Some(o) = &self.obs {
                        o.inner_alive.set(1);
                        if reconnect {
                            o.inner_reconnects.inc();
                        }
                    }
                    // Shard map first (it names the authorization
                    // slice), then re-register all live binds, then
                    // start pinging — the recovery contract a
                    // restarted inner server relies on.
                    if self.fleet.is_some() {
                        self.send_shard_sync(ctx, flow);
                    }
                    self.send_bind_sync(ctx, flow);
                    self.send_ping(ctx, flow);
                    ctx.set_timer(sd(interval), HB_TICK);
                }
                None => ctx.close(flow),
            },
            FlowEvent::Refused { token, .. } => match self.dials.remove(&token) {
                Some(Dial::Target { client, started }) => {
                    if let Some(o) = &self.obs {
                        o.connects_failed.inc();
                        o.connect_req_ns.record(ctx.now().since(started).nanos());
                    }
                    let _ = ctx.send(client, CTRL_MSG_BYTES, ProxyMsg::ConnectRep { ok: false });
                    ctx.close(client);
                    self.release_flow(client);
                }
                Some(Dial::Inner { peer, .. }) | Some(Dial::DirectClient { peer, .. }) => {
                    if let Some(o) = &self.obs {
                        o.relays_failed.inc();
                    }
                    ctx.close(peer);
                    self.release_flow(peer);
                }
                Some(Dial::Heartbeat) => {
                    let now = ctx.now().nanos();
                    let mut retry = Duration::ZERO;
                    if let Some(l) = &mut self.live {
                        l.breaker.on_failure(now);
                        retry = l.hb.interval;
                    }
                    self.mirror_breaker();
                    ctx.set_timer(sd(retry), HB_RETRY);
                }
                None => {}
            },
            FlowEvent::Closed { flow, .. } => {
                if self.live.as_ref().and_then(|l| l.flow) == Some(flow) {
                    ctx.trace(|| format!("outer: heartbeat session lost, flow={}", flow.0));
                    let retry = match &self.live {
                        Some(l) => l.hb.interval,
                        None => Duration::ZERO,
                    };
                    self.declare_inner_dead(ctx, flow, retry);
                }
                if let Some(Role::BindControl { rdv_port }) = self.roles.remove(&flow) {
                    // Registration lifetime = control connection lifetime.
                    self.rdv.remove(&rdv_port);
                    if let Some(l) = &mut self.live {
                        l.rdv_dirty = true;
                    }
                    ctx.unlisten(rdv_port);
                }
                self.release_flow(flow);
                if let Some(pair) = self.relay.on_closed(ctx, flow) {
                    self.roles.remove(&pair);
                    self.release_flow(pair);
                }
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let flow = msg.flow;
        match self.roles.get(&flow).copied() {
            Some(Role::AwaitRequest) => {
                let m = msg.expect::<ProxyMsg>();
                self.handle_request(ctx, flow, m);
            }
            Some(Role::AwaitRelayRep { peer, started }) => match msg.expect::<ProxyMsg>() {
                ProxyMsg::RelayRep { ok: true } => {
                    // Fig. 4 step 5 complete: bridge peer ↔ inner leg.
                    self.roles.insert(peer, Role::Relayed);
                    self.roles.insert(flow, Role::Relayed);
                    if let Some(o) = &self.obs {
                        o.relays_ok.inc();
                        o.rendezvous_ns.record(ctx.now().since(started).nanos());
                    }
                    self.relay.pair(ctx, peer, flow);
                }
                _ => {
                    if let Some(o) = &self.obs {
                        o.relays_failed.inc();
                    }
                    ctx.close(peer);
                    ctx.close(flow);
                    self.release_flow(peer);
                }
            },
            Some(Role::Heartbeat) => {
                if let ProxyMsg::Pong { .. } = msg.expect::<ProxyMsg>() {
                    if let Some(o) = &self.obs {
                        o.hb_pongs.inc();
                    }
                    let now = ctx.now().nanos();
                    if let Some(l) = &mut self.live {
                        if let Some(m) = &mut l.monitor {
                            m.observe(now);
                        }
                    }
                }
            }
            Some(Role::Relayed) | Some(Role::PeerPending) => {
                // Opaque relay traffic (PeerPending: early data from an
                // eager peer — buffered by the core until paired).
                self.relay
                    .on_data(ctx, flow, msg.size, msg.payload, msg.sent_at);
            }
            Some(Role::BindControl { .. }) => {
                // Clients don't speak on a bind control connection.
            }
            None => {}
        }
    }
}
