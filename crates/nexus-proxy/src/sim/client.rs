//! Client-side proxy logic for simulation actors: the sim analogue of
//! `NXProxyConnect` / `NXProxyBind` / `NXProxyAccept`.
//!
//! Simulation actors are event-driven state machines, so the client
//! library is an *embedded* state machine: the owning actor funnels
//! all its `on_flow` / `on_message` / `on_timer` events through
//! [`NxClient`], which consumes proxy-internal traffic and hands
//! everything else back. This mirrors how the paper patched Globus:
//! the application still sees connect/accept semantics; the proxy
//! plumbing is hidden below.
//!
//! ## Recovery
//!
//! The relay chain can fail independently of the endpoints (outer
//! server crash, WAN loss). The client machine therefore retries
//! failed dials and unanswered control requests with bounded
//! exponential backoff + jitter ([`RetryPolicy`], seeded via the
//! world's [`netsim::rng::SimRng`], so recovery is deterministic), and
//! re-issues its `BindReq` when the bind control flow drops — the
//! owner sees [`NxEvent::BindLost`] (withdraw the advertised address)
//! followed by a fresh [`NxEvent::Bound`] once the outer server is
//! back. Owners must forward unrecognized timer tokens through
//! [`NxClient::on_timer`] (gate on [`NxClient::owns_timer`]).

use super::{sim_shard_key, sim_shard_map, ProxyMsg, CTRL_MSG_BYTES};
use crate::liveness::BreakerConfig;
use crate::shard::{ShardRouter, ShardStats};
use netsim::prelude::*;
use std::collections::HashMap;
use wacs_obs::{Counter, Histogram, Registry};

/// Segment size for large data messages: the transport splits big
/// sends so relays and links pipeline at this granularity — exactly
/// why the paper's 1 MB proxied WAN transfer runs at wire speed while
/// small messages pay the full per-hop relay cost.
pub const SEGMENT_BYTES: u64 = 65536;

/// Internal framing for segmented sends. Only the final segment
/// carries the payload; since flows are FIFO, its arrival time *is*
/// the message completion time, so receivers need no reassembly state.
enum SegMsg {
    Part,
    Last { total: u64, payload: Payload },
}

/// Sim analogue of the `NEXUS_PROXY_OUTER_SERVER` environment variable.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimProxyEnv {
    pub outer: Option<(NodeId, u16)>,
}

impl SimProxyEnv {
    pub fn direct() -> Self {
        SimProxyEnv { outer: None }
    }

    pub fn via(outer: (NodeId, u16)) -> Self {
        SimProxyEnv { outer: Some(outer) }
    }
}

/// Bounded-retry knobs for dials and control round trips. Backoff for
/// attempt `n` (1-based) is uniform jitter in `[cap/2, cap]` with
/// `cap = min(base_backoff << (n-1), max_backoff)`.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total dial attempts per logical operation before giving up.
    pub max_attempts: u32,
    /// Backoff cap after the first failure.
    pub base_backoff: SimDuration,
    /// Upper bound on the backoff cap.
    pub max_backoff: SimDuration,
    /// How long to wait for a `ConnectRep`/`BindRep` on an established
    /// control flow before abandoning it and retrying.
    pub reply_deadline: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff: SimDuration::from_millis(40),
            max_backoff: SimDuration::from_secs(1),
            reply_deadline: SimDuration::from_secs(2),
        }
    }
}

/// High-level events produced by the client machine.
#[derive(Debug)]
pub enum NxEvent {
    /// Your `connect(dst, token)` completed; talk on `flow`.
    Connected {
        flow: FlowId,
        token: u64,
    },
    /// Your `connect(dst, token)` failed (after retries).
    Refused {
        token: u64,
    },
    /// Your `bind()` completed; peers should connect to `advertised`.
    Bound {
        advertised: (NodeId, u16),
    },
    BindFailed,
    /// The bind control flow dropped (outer server crash): the old
    /// rendezvous address is dead. Withdraw it; a re-bind is already
    /// underway and will surface as a fresh [`NxEvent::Bound`].
    BindLost,
    /// A peer reached your bound endpoint (possibly via the relay).
    Accepted {
        flow: FlowId,
    },
}

/// Result of feeding a raw event through the client machine.
pub enum NxHandled {
    /// A proxy-level event for the application.
    Event(NxEvent),
    /// Application data (opaque to the proxy layer).
    Data(Delivery),
    /// Not proxy traffic: the application's own raw flow event.
    Flow(FlowEvent),
    /// Internal bookkeeping; nothing to do.
    Consumed,
}

/// Internal connect/timer-token namespace (application tokens must
/// stay below this).
pub const NX_TOKEN_BASE: u64 = 1 << 62;

enum Pending {
    /// Dialing the outer server to issue a ConnectReq toward `dst`.
    OuterForConnect {
        user_token: u64,
        dst: (NodeId, u16),
        attempt: u32,
    },
    /// Plain connect (direct, or straight to a rendezvous address).
    Direct {
        user_token: u64,
        dst: (NodeId, u16),
        attempt: u32,
    },
    /// Dialing the outer server to register a bind of `client_port`.
    OuterForBind { client_port: u16, attempt: u32 },
    /// Dialing fleet shard `idx` (at `shard`) to register a bind of
    /// `client_port`. `fallback` is set when the client knowingly
    /// addresses a non-owner (the owner's breaker is open), telling
    /// the shard to serve rather than redirect.
    FleetForBind {
        client_port: u16,
        attempt: u32,
        idx: usize,
        shard: (NodeId, u16),
        fallback: bool,
    },
}

/// Deferred work attached to a timer token.
enum RetryAction {
    Connect {
        user_token: u64,
        dst: (NodeId, u16),
        attempt: u32,
    },
    Bind {
        client_port: u16,
        attempt: u32,
    },
    ConnectDeadline {
        flow: FlowId,
    },
    BindDeadline {
        flow: FlowId,
    },
}

/// A control flow awaiting a `ConnectRep`.
struct AwaitRep {
    user_token: u64,
    dst: (NodeId, u16),
    attempt: u32,
    deadline_token: u64,
}

/// The control flow awaiting a `BindRep`.
struct BindAwait {
    flow: FlowId,
    client_port: u16,
    attempt: u32,
    deadline_token: u64,
    /// Fleet mode: the shard serving this bind, as `(index, node)` —
    /// the node becomes the advertised rendezvous host on success and
    /// the index is charged on failure.
    shard: Option<(usize, NodeId)>,
}

/// Client-side fleet state: member endpoints plus the breaker-gated
/// HRW router (the sim twin of the real path's `FleetRouter`).
struct SimFleetClient {
    members: Vec<(NodeId, u16)>,
    router: ShardRouter,
}

/// Registry handles for the client machine's spans and counters.
struct ClientObs {
    /// `connect()` call → `Connected`/`Refused` (retries included).
    handshake_ns: Histogram,
    /// `bind()` call (or re-bind start) → `Bound`.
    bind_ns: Histogram,
    retries: Counter,
    rebinds: Counter,
}

/// The embedded client state machine.
pub struct NxClient {
    env: SimProxyEnv,
    /// When set, binds route across the outer-shard fleet instead of
    /// `env.outer` (DESIGN.md §6d).
    fleet: Option<SimFleetClient>,
    policy: RetryPolicy,
    pending: HashMap<u64, Pending>,
    /// Flows awaiting a `ConnectRep`.
    await_rep: HashMap<FlowId, AwaitRep>,
    /// Control flow awaiting a `BindRep`.
    bind_await: Option<BindAwait>,
    /// Keeps the registration alive (closing it withdraws the
    /// rendezvous port).
    bind_ctrl: Option<FlowId>,
    private_port: Option<u16>,
    /// Armed timer tokens and what to do when they fire.
    timers: HashMap<u64, RetryAction>,
    next_itoken: u64,
    retries: u64,
    rebinds: u64,
    obs: Option<ClientObs>,
    shard_obs: Option<ShardStats>,
    /// user token → when its `connect()` was issued (span bookkeeping;
    /// survives retries because retries keep the user token).
    connect_started: HashMap<u64, SimTime>,
    /// When the current bind (or re-bind) was started.
    bind_started: Option<SimTime>,
    /// Fleet binds pinned to shard `lane % members` (ring-order
    /// failover) instead of the HRW ladder — see
    /// [`NxClient::with_bind_lane`].
    bind_lane: Option<u16>,
}

impl NxClient {
    pub fn new(env: SimProxyEnv) -> Self {
        Self::with_policy(env, RetryPolicy::default())
    }

    pub fn with_policy(env: SimProxyEnv, policy: RetryPolicy) -> Self {
        NxClient {
            env,
            fleet: None,
            policy,
            pending: HashMap::new(),
            await_rep: HashMap::new(),
            bind_await: None,
            bind_ctrl: None,
            private_port: None,
            timers: HashMap::new(),
            next_itoken: NX_TOKEN_BASE,
            retries: 0,
            rebinds: 0,
            obs: None,
            shard_obs: None,
            connect_started: HashMap::new(),
            bind_started: None,
            bind_lane: None,
        }
    }

    /// Route binds (and proxied connects) across an outer-shard fleet
    /// instead of `env.outer`: HRW ownership picks the shard, per-shard
    /// circuit breakers drive failover, and member hosts are still
    /// dialed directly for rendezvous connects.
    pub fn with_fleet(mut self, members: Vec<(NodeId, u16)>) -> Self {
        let router = ShardRouter::new(sim_shard_map(1, &members), BreakerConfig::default());
        self.fleet = Some(SimFleetClient { members, router });
        self
    }

    /// Pin this client's fleet binds to shard `lane % members`,
    /// falling over in ring order past breaker-open members
    /// ([`ShardRouter::route_from`]) instead of walking the bind key's
    /// HRW ladder. A striped transfer gives each stripe lane its own
    /// index, so K lanes land on K distinct shards by construction —
    /// parallel relay queues are the whole point of striping, and hash
    /// placement can collide lanes onto one shard. No effect outside
    /// fleet mode.
    #[must_use]
    pub fn with_bind_lane(mut self, lane: u16) -> Self {
        self.bind_lane = Some(lane);
        self
    }

    /// Record handshake/bind spans and retry counters under
    /// `proxy.client.*` (and fleet routing under `wacs.shard.*`) in
    /// `registry`.
    pub fn with_obs(mut self, registry: &Registry) -> Self {
        self.obs = Some(ClientObs {
            handshake_ns: registry.histogram("proxy.client.handshake_ns"),
            bind_ns: registry.histogram("proxy.client.bind_ns"),
            retries: registry.counter("proxy.client.retries"),
            rebinds: registry.counter("proxy.client.rebinds"),
        });
        let shard = ShardStats::in_registry(registry);
        if let Some(f) = &self.fleet {
            shard.map_generation.set(f.router.map().generation() as i64);
        }
        self.shard_obs = Some(shard);
        self
    }

    /// Install a strictly newer fleet membership (relayed from a
    /// `ShardSync` or pushed by the harness). Breakers of unchanged
    /// shards keep their state.
    pub fn fleet_install(&mut self, generation: u64, members: Vec<(NodeId, u16)>) -> bool {
        let Some(f) = &mut self.fleet else {
            return false;
        };
        let map = sim_shard_map(generation, &members);
        if !f.router.install(map.generation(), map.tags().to_vec()) {
            return false;
        }
        f.members = members;
        if let Some(s) = &self.shard_obs {
            s.map_generation.set(generation as i64);
        }
        true
    }

    /// Current fleet-map generation (0 when not in fleet mode).
    pub fn fleet_generation(&self) -> u64 {
        self.fleet
            .as_ref()
            .map_or(0, |f| f.router.map().generation())
    }

    /// Charge a failed bind interaction to shard `idx`'s breaker.
    fn fleet_bind_failure(&mut self, ctx: &mut Ctx<'_>, idx: usize) {
        if let Some(f) = &mut self.fleet {
            f.router.on_failure(idx, ctx.now().nanos());
            if let Some(s) = &self.shard_obs {
                s.failovers.inc();
            }
        }
    }

    /// Close the handshake span for `user_token` at `now` (called at
    /// every `Connected`/`Refused` emission point).
    fn finish_connect_span(&mut self, user_token: u64, now: SimTime) {
        if let Some(t0) = self.connect_started.remove(&user_token) {
            if let Some(o) = &self.obs {
                o.handshake_ns.record(now.since(t0).nanos());
            }
        }
    }

    pub fn env(&self) -> SimProxyEnv {
        self.env
    }

    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// Retry attempts scheduled so far (dial retries + re-binds).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Automatic re-binds after a lost bind control flow.
    pub fn rebinds(&self) -> u64 {
        self.rebinds
    }

    fn itoken(&mut self) -> u64 {
        let t = self.next_itoken;
        self.next_itoken += 1;
        t
    }

    /// Does a timer token belong to this machine? Owners route such
    /// tokens to [`NxClient::on_timer`].
    pub fn owns_timer(&self, token: u64) -> bool {
        token >= NX_TOKEN_BASE
    }

    /// Jittered exponential backoff after failed attempt `attempt`
    /// (1-based): uniform in `[cap/2, cap]`.
    fn backoff_delay(&mut self, ctx: &mut Ctx<'_>, attempt: u32) -> SimDuration {
        let base = self.policy.base_backoff.nanos().max(1);
        let shift = attempt.saturating_sub(1).min(20);
        let cap = (base << shift).min(self.policy.max_backoff.nanos().max(1));
        let half = cap / 2;
        SimDuration(half + ctx.rng().below(cap - half + 1))
    }

    fn schedule(&mut self, ctx: &mut Ctx<'_>, delay: SimDuration, action: RetryAction) {
        let tok = self.itoken();
        self.timers.insert(tok, action);
        ctx.set_timer(delay, tok);
    }

    /// Retry a failed connect or give up with `Refused`.
    fn retry_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        user_token: u64,
        dst: (NodeId, u16),
        attempt: u32,
    ) -> NxHandled {
        if attempt >= self.policy.max_attempts {
            self.finish_connect_span(user_token, ctx.now());
            return NxHandled::Event(NxEvent::Refused { token: user_token });
        }
        self.retries += 1;
        if let Some(o) = &self.obs {
            o.retries.inc();
        }
        let delay = self.backoff_delay(ctx, attempt);
        self.schedule(
            ctx,
            delay,
            RetryAction::Connect {
                user_token,
                dst,
                attempt: attempt + 1,
            },
        );
        NxHandled::Consumed
    }

    /// Retry a failed bind registration or give up with `BindFailed`.
    fn retry_bind(&mut self, ctx: &mut Ctx<'_>, client_port: u16, attempt: u32) -> NxHandled {
        if attempt >= self.policy.max_attempts {
            self.bind_started = None;
            return NxHandled::Event(NxEvent::BindFailed);
        }
        self.retries += 1;
        if let Some(o) = &self.obs {
            o.retries.inc();
        }
        let delay = self.backoff_delay(ctx, attempt);
        self.schedule(
            ctx,
            delay,
            RetryAction::Bind {
                client_port,
                attempt: attempt + 1,
            },
        );
        NxHandled::Consumed
    }

    fn start_connect(
        &mut self,
        ctx: &mut Ctx<'_>,
        dst: (NodeId, u16),
        user_token: u64,
        attempt: u32,
    ) {
        // Where to dial: `None` means a plain connect to `dst` (direct
        // mode, or `dst` is a rendezvous address on a proxy host);
        // `Some(ep)` means issue a `ConnectReq` via `ep`.
        let via: Option<(NodeId, u16)> = if let Some(f) = &mut self.fleet {
            if f.members.is_empty() || f.members.iter().any(|m| m.0 == dst.0) {
                None
            } else {
                // Any shard can serve a `ConnectReq`; prefer the HRW
                // owner, let breakers skip shards known dead, and when
                // everything is open probe the owner anyway (a refusal
                // lands back in the normal retry path).
                let key = sim_shard_key(dst);
                let idx = match f.router.route(&key, ctx.now().nanos()) {
                    Some(i) => i,
                    None => f.router.map().owner(&key).unwrap_or(0),
                };
                Some(f.members[idx])
            }
        } else {
            match self.env.outer {
                Some(outer) if dst.0 != outer.0 => Some(outer),
                _ => None,
            }
        };
        let tok = self.itoken();
        match via {
            None => {
                self.pending.insert(
                    tok,
                    Pending::Direct {
                        user_token,
                        dst,
                        attempt,
                    },
                );
                ctx.connect(dst, tok);
            }
            Some(ep) => {
                self.pending.insert(
                    tok,
                    Pending::OuterForConnect {
                        user_token,
                        dst,
                        attempt,
                    },
                );
                ctx.connect(ep, tok);
            }
        }
    }

    fn start_bind_dial(&mut self, ctx: &mut Ctx<'_>, client_port: u16, attempt: u32) {
        // Fleet mode: the breaker-gated ladder picks the shard, and a
        // knowing non-owner dial carries the fallback flag so the shard
        // serves instead of redirecting us back to a dead owner.
        let lane = self.bind_lane;
        let fleet_target = match &mut self.fleet {
            Some(f) if !f.members.is_empty() => {
                let key = sim_shard_key((ctx.host(), client_port));
                let idx = match lane {
                    // Lane affinity: positional start, ring failover.
                    Some(l) => match f.router.route_from(usize::from(l), ctx.now().nanos()) {
                        Some(i) => i,
                        None => usize::from(l) % f.members.len(),
                    },
                    None => match f.router.route(&key, ctx.now().nanos()) {
                        Some(i) => i,
                        // Every breaker open: probe the owner anyway;
                        // the refusal feeds the normal retry/backoff
                        // path.
                        None => f.router.map().owner(&key).unwrap_or(0),
                    },
                };
                let fallback = f.router.map().owner(&key) != Some(idx);
                Some((idx, f.members[idx], fallback))
            }
            _ => None,
        };
        if let Some((idx, shard, fallback)) = fleet_target {
            let tok = self.itoken();
            self.pending.insert(
                tok,
                Pending::FleetForBind {
                    client_port,
                    attempt,
                    idx,
                    shard,
                    fallback,
                },
            );
            ctx.connect(shard, tok);
        } else if let Some(outer) = self.env.outer {
            let tok = self.itoken();
            self.pending.insert(
                tok,
                Pending::OuterForBind {
                    client_port,
                    attempt,
                },
            );
            ctx.connect(outer, tok);
        }
    }

    /// `NXProxyConnect`: connect to `dst`, directly or via the outer
    /// server. Completion arrives as [`NxEvent::Connected`] /
    /// [`NxEvent::Refused`] carrying `user_token`.
    pub fn connect(&mut self, ctx: &mut Ctx<'_>, dst: (NodeId, u16), user_token: u64) {
        assert!(
            user_token < NX_TOKEN_BASE,
            "application tokens must be below NX_TOKEN_BASE"
        );
        if self.obs.is_some() {
            self.connect_started.insert(user_token, ctx.now());
        }
        self.start_connect(ctx, dst, user_token, 1);
    }

    /// `NXProxyBind`: start listening. Returns `Some(advertised)`
    /// immediately in direct mode; in proxied mode the answer arrives
    /// later as [`NxEvent::Bound`].
    pub fn bind(&mut self, ctx: &mut Ctx<'_>) -> Option<(NodeId, u16)> {
        // Listening on port 0 draws from the ephemeral allocator, which
        // only fails if the whole port space is exhausted — a harness bug.
        #[allow(clippy::expect_used)]
        let port = ctx.listen(0).expect("ephemeral listen failed"); // lint:allow(unwrap-panic)
        self.private_port = Some(port);
        if self.fleet.is_none() && self.env.outer.is_none() {
            // Direct binds complete within the call: zero-length span.
            if let Some(o) = &self.obs {
                o.bind_ns.record(0);
            }
            Some((ctx.host(), port))
        } else {
            self.bind_started = Some(ctx.now());
            self.start_bind_dial(ctx, port, 1);
            None
        }
    }

    /// Send application data on an established flow, segmenting large
    /// messages so they pipeline through links and relays. Use this
    /// instead of `ctx.send` for anything that can exceed
    /// [`SEGMENT_BYTES`].
    pub fn send_data<T: std::any::Any + Send>(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        size: u64,
        payload: T,
    ) -> Result<(), SendError> {
        if size <= SEGMENT_BYTES {
            return ctx.send(flow, size, payload);
        }
        let full_segments = (size - 1) / SEGMENT_BYTES; // at least 1
        for _ in 0..full_segments {
            ctx.send(flow, SEGMENT_BYTES, SegMsg::Part)?;
        }
        let tail = size - full_segments * SEGMENT_BYTES;
        ctx.send(
            flow,
            tail,
            SegMsg::Last {
                total: size,
                payload: Box::new(payload),
            },
        )
    }

    /// Feed a timer token through the machine (owners call this for
    /// every token where [`NxClient::owns_timer`] is true).
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> NxHandled {
        let Some(action) = self.timers.remove(&token) else {
            return NxHandled::Consumed; // cancelled or stale
        };
        match action {
            RetryAction::Connect {
                user_token,
                dst,
                attempt,
            } => {
                self.start_connect(ctx, dst, user_token, attempt);
                NxHandled::Consumed
            }
            RetryAction::Bind {
                client_port,
                attempt,
            } => {
                self.start_bind_dial(ctx, client_port, attempt);
                NxHandled::Consumed
            }
            RetryAction::ConnectDeadline { flow } => {
                if let Some(ar) = self.await_rep.remove(&flow) {
                    ctx.close(flow);
                    self.retry_connect(ctx, ar.user_token, ar.dst, ar.attempt)
                } else {
                    NxHandled::Consumed
                }
            }
            RetryAction::BindDeadline { flow } => {
                if self.bind_await.as_ref().is_some_and(|b| b.flow == flow) {
                    let Some(b) = self.bind_await.take() else {
                        return NxHandled::Consumed;
                    };
                    ctx.close(flow);
                    if let Some((idx, _)) = b.shard {
                        self.fleet_bind_failure(ctx, idx);
                    }
                    self.retry_bind(ctx, b.client_port, b.attempt)
                } else {
                    NxHandled::Consumed
                }
            }
        }
    }

    /// Feed a raw flow event through the machine.
    pub fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) -> NxHandled {
        match ev {
            FlowEvent::Connected { flow, token, .. } if token >= NX_TOKEN_BASE => {
                match self.pending.remove(&token) {
                    Some(Pending::Direct { user_token, .. }) => {
                        self.finish_connect_span(user_token, ctx.now());
                        NxHandled::Event(NxEvent::Connected {
                            flow,
                            token: user_token,
                        })
                    }
                    Some(Pending::OuterForConnect {
                        user_token,
                        dst,
                        attempt,
                    }) => {
                        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::ConnectReq { dst });
                        let deadline_token = self.itoken();
                        self.timers
                            .insert(deadline_token, RetryAction::ConnectDeadline { flow });
                        ctx.set_timer(self.policy.reply_deadline, deadline_token);
                        self.await_rep.insert(
                            flow,
                            AwaitRep {
                                user_token,
                                dst,
                                attempt,
                                deadline_token,
                            },
                        );
                        NxHandled::Consumed
                    }
                    Some(Pending::OuterForBind {
                        client_port,
                        attempt,
                    }) => {
                        let client = (ctx.host(), client_port);
                        let _ = ctx.send(
                            flow,
                            CTRL_MSG_BYTES,
                            ProxyMsg::BindReq {
                                client,
                                fallback: false,
                            },
                        );
                        let deadline_token = self.itoken();
                        self.timers
                            .insert(deadline_token, RetryAction::BindDeadline { flow });
                        ctx.set_timer(self.policy.reply_deadline, deadline_token);
                        self.bind_await = Some(BindAwait {
                            flow,
                            client_port,
                            attempt,
                            deadline_token,
                            shard: None,
                        });
                        NxHandled::Consumed
                    }
                    Some(Pending::FleetForBind {
                        client_port,
                        attempt,
                        idx,
                        shard,
                        fallback,
                    }) => {
                        if let Some(f) = &mut self.fleet {
                            f.router.on_success(idx);
                        }
                        let client = (ctx.host(), client_port);
                        let _ =
                            ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindReq { client, fallback });
                        let deadline_token = self.itoken();
                        self.timers
                            .insert(deadline_token, RetryAction::BindDeadline { flow });
                        ctx.set_timer(self.policy.reply_deadline, deadline_token);
                        self.bind_await = Some(BindAwait {
                            flow,
                            client_port,
                            attempt,
                            deadline_token,
                            shard: Some((idx, shard.0)),
                        });
                        NxHandled::Consumed
                    }
                    None => NxHandled::Consumed,
                }
            }
            FlowEvent::Refused { token, .. } if token >= NX_TOKEN_BASE => {
                match self.pending.remove(&token) {
                    Some(Pending::Direct {
                        user_token,
                        dst,
                        attempt,
                    })
                    | Some(Pending::OuterForConnect {
                        user_token,
                        dst,
                        attempt,
                    }) => self.retry_connect(ctx, user_token, dst, attempt),
                    Some(Pending::OuterForBind {
                        client_port,
                        attempt,
                    }) => self.retry_bind(ctx, client_port, attempt),
                    Some(Pending::FleetForBind {
                        client_port,
                        attempt,
                        idx,
                        ..
                    }) => {
                        // A refused shard dial charges its breaker; the
                        // retry re-routes and descends the ladder once
                        // the breaker opens.
                        self.fleet_bind_failure(ctx, idx);
                        self.retry_bind(ctx, client_port, attempt)
                    }
                    None => NxHandled::Consumed,
                }
            }
            FlowEvent::Accepted {
                flow, listen_port, ..
            } if Some(listen_port) == self.private_port => {
                NxHandled::Event(NxEvent::Accepted { flow })
            }
            FlowEvent::Closed { flow, .. } if self.await_rep.contains_key(&flow) => {
                // Outer died before replying to our ConnectReq: cancel
                // the reply deadline and retry the whole dial.
                let Some(ar) = self.await_rep.remove(&flow) else {
                    return NxHandled::Consumed;
                };
                self.timers.remove(&ar.deadline_token);
                self.retry_connect(ctx, ar.user_token, ar.dst, ar.attempt)
            }
            FlowEvent::Closed { flow, .. }
                if self.bind_await.as_ref().is_some_and(|b| b.flow == flow) =>
            {
                let Some(b) = self.bind_await.take() else {
                    return NxHandled::Consumed;
                };
                self.timers.remove(&b.deadline_token);
                if let Some((idx, _)) = b.shard {
                    self.fleet_bind_failure(ctx, idx);
                }
                self.retry_bind(ctx, b.client_port, b.attempt)
            }
            FlowEvent::Closed { flow, .. } if self.bind_ctrl == Some(flow) => {
                // The outer server crashed (or withdrew us): the
                // rendezvous registration is gone. Re-register the same
                // private port and tell the owner the old address died.
                self.bind_ctrl = None;
                let proxied = self.fleet.is_some() || self.env.outer.is_some();
                match self.private_port {
                    Some(port) if proxied => {
                        self.rebinds += 1;
                        self.retries += 1;
                        if let Some(o) = &self.obs {
                            o.rebinds.inc();
                            o.retries.inc();
                        }
                        self.bind_started = Some(ctx.now());
                        self.start_bind_dial(ctx, port, 1);
                        NxHandled::Event(NxEvent::BindLost)
                    }
                    _ => NxHandled::Event(NxEvent::BindLost),
                }
            }
            other => NxHandled::Flow(other),
        }
    }

    /// Feed a delivery through the machine.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) -> NxHandled {
        let flow = msg.flow;
        // Segmented data: swallow body segments; the final segment
        // resurfaces as the whole message.
        if msg.peek::<SegMsg>().is_some() {
            let sent_at = msg.sent_at;
            return match msg.expect::<SegMsg>() {
                SegMsg::Part => NxHandled::Consumed,
                SegMsg::Last { total, payload } => NxHandled::Data(Delivery {
                    flow,
                    size: total,
                    payload,
                    sent_at,
                }),
            };
        }
        if let Some(ar) = self.await_rep.remove(&flow) {
            self.timers.remove(&ar.deadline_token);
            return match msg.expect::<ProxyMsg>() {
                ProxyMsg::ConnectRep { ok: true } => {
                    self.finish_connect_span(ar.user_token, ctx.now());
                    NxHandled::Event(NxEvent::Connected {
                        flow,
                        token: ar.user_token,
                    })
                }
                _ => {
                    // Relay could not reach dst (stale rendezvous port
                    // during an outer restart, dst not up yet): retry.
                    ctx.close(flow);
                    self.retry_connect(ctx, ar.user_token, ar.dst, ar.attempt)
                }
            };
        }
        if self.bind_await.as_ref().is_some_and(|b| b.flow == flow) {
            let Some(b) = self.bind_await.take() else {
                return NxHandled::Data(msg);
            };
            self.timers.remove(&b.deadline_token);
            return match msg.expect::<ProxyMsg>() {
                ProxyMsg::BindRep { rdv_port } if rdv_port != 0 => {
                    // The advertised rendezvous host is whoever served
                    // the bind: the fleet shard, or the single outer.
                    let rdv_host = match (b.shard, self.env.outer) {
                        (Some((idx, node)), _) => {
                            if let Some(f) = &mut self.fleet {
                                f.router.on_success(idx);
                            }
                            Some(node)
                        }
                        (None, Some(outer)) => Some(outer.0),
                        // bind_await is only set in proxied mode; if the
                        // env lost its outer address, fail cleanly.
                        (None, None) => None,
                    };
                    match rdv_host {
                        Some(node) => {
                            self.bind_ctrl = Some(flow);
                            if let Some(t0) = self.bind_started.take() {
                                if let Some(o) = &self.obs {
                                    o.bind_ns.record(ctx.now().since(t0).nanos());
                                }
                            }
                            NxHandled::Event(NxEvent::Bound {
                                advertised: (node, rdv_port),
                            })
                        }
                        None => {
                            ctx.close(flow);
                            NxHandled::Event(NxEvent::BindFailed)
                        }
                    }
                }
                // A non-owner shard named the owner: follow the
                // redirect with `fallback: false` (the redirecting
                // shard's map is at least as fresh as ours).
                ProxyMsg::Redirect { owner } if self.fleet.is_some() => {
                    if let Some(s) = &self.shard_obs {
                        s.redirects_followed.inc();
                    }
                    ctx.close(flow);
                    let idx = self
                        .fleet
                        .as_ref()
                        .and_then(|f| f.members.iter().position(|m| *m == owner))
                        .or(b.shard.map(|(i, _)| i))
                        .unwrap_or(0);
                    let tok = self.itoken();
                    self.pending.insert(
                        tok,
                        Pending::FleetForBind {
                            client_port: b.client_port,
                            attempt: b.attempt + 1,
                            idx,
                            shard: owner,
                            fallback: false,
                        },
                    );
                    ctx.connect(owner, tok);
                    NxHandled::Consumed
                }
                // `rdv_port: 0` is the server's explicit allocation
                // failure (or a superseded shard's refusal) — never a
                // valid rendezvous. In fleet mode charge the shard and
                // retry elsewhere; single-outer fails the bind.
                _ => {
                    ctx.close(flow);
                    match b.shard {
                        Some((idx, _)) => {
                            self.fleet_bind_failure(ctx, idx);
                            self.retry_bind(ctx, b.client_port, b.attempt)
                        }
                        None => NxHandled::Event(NxEvent::BindFailed),
                    }
                }
            };
        }
        NxHandled::Data(msg)
    }
}
