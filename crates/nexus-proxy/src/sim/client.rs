//! Client-side proxy logic for simulation actors: the sim analogue of
//! `NXProxyConnect` / `NXProxyBind` / `NXProxyAccept`.
//!
//! Simulation actors are event-driven state machines, so the client
//! library is an *embedded* state machine: the owning actor funnels
//! all its `on_flow` / `on_message` events through [`NxClient`], which
//! consumes proxy-internal traffic and hands everything else back.
//! This mirrors how the paper patched Globus: the application still
//! sees connect/accept semantics; the proxy plumbing is hidden below.

use super::{ProxyMsg, CTRL_MSG_BYTES};
use netsim::prelude::*;
use std::collections::HashMap;

/// Segment size for large data messages: the transport splits big
/// sends so relays and links pipeline at this granularity — exactly
/// why the paper's 1 MB proxied WAN transfer runs at wire speed while
/// small messages pay the full per-hop relay cost.
pub const SEGMENT_BYTES: u64 = 65536;

/// Internal framing for segmented sends. Only the final segment
/// carries the payload; since flows are FIFO, its arrival time *is*
/// the message completion time, so receivers need no reassembly state.
enum SegMsg {
    Part,
    Last { total: u64, payload: Payload },
}

/// Sim analogue of the `NEXUS_PROXY_OUTER_SERVER` environment variable.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimProxyEnv {
    pub outer: Option<(NodeId, u16)>,
}

impl SimProxyEnv {
    pub fn direct() -> Self {
        SimProxyEnv { outer: None }
    }

    pub fn via(outer: (NodeId, u16)) -> Self {
        SimProxyEnv { outer: Some(outer) }
    }
}

/// High-level events produced by the client machine.
#[derive(Debug)]
pub enum NxEvent {
    /// Your `connect(dst, token)` completed; talk on `flow`.
    Connected {
        flow: FlowId,
        token: u64,
    },
    /// Your `connect(dst, token)` failed.
    Refused {
        token: u64,
    },
    /// Your `bind()` completed; peers should connect to `advertised`.
    Bound {
        advertised: (NodeId, u16),
    },
    BindFailed,
    /// A peer reached your bound endpoint (possibly via the relay).
    Accepted {
        flow: FlowId,
    },
}

/// Result of feeding a raw event through the client machine.
pub enum NxHandled {
    /// A proxy-level event for the application.
    Event(NxEvent),
    /// Application data (opaque to the proxy layer).
    Data(Delivery),
    /// Not proxy traffic: the application's own raw flow event.
    Flow(FlowEvent),
    /// Internal bookkeeping; nothing to do.
    Consumed,
}

/// Internal connect-token namespace (application tokens must stay
/// below this).
pub const NX_TOKEN_BASE: u64 = 1 << 62;

enum Pending {
    /// Dialing the outer server to issue a ConnectReq toward `dst`.
    OuterForConnect { user_token: u64, dst: (NodeId, u16) },
    /// Plain connect (direct, or straight to a rendezvous address).
    Direct { user_token: u64 },
    /// Dialing the outer server to register a bind of `client_port`.
    OuterForBind { client_port: u16 },
}

/// The embedded client state machine.
pub struct NxClient {
    env: SimProxyEnv,
    pending: HashMap<u64, Pending>,
    /// Flows awaiting a `ConnectRep`, keyed to the user token.
    await_rep: HashMap<FlowId, u64>,
    /// Control flow awaiting a `BindRep`.
    bind_await: Option<FlowId>,
    /// Keeps the registration alive (closing it withdraws the
    /// rendezvous port).
    bind_ctrl: Option<FlowId>,
    private_port: Option<u16>,
    next_itoken: u64,
}

impl NxClient {
    pub fn new(env: SimProxyEnv) -> Self {
        NxClient {
            env,
            pending: HashMap::new(),
            await_rep: HashMap::new(),
            bind_await: None,
            bind_ctrl: None,
            private_port: None,
            next_itoken: NX_TOKEN_BASE,
        }
    }

    pub fn env(&self) -> SimProxyEnv {
        self.env
    }

    fn itoken(&mut self) -> u64 {
        let t = self.next_itoken;
        self.next_itoken += 1;
        t
    }

    /// `NXProxyConnect`: connect to `dst`, directly or via the outer
    /// server. Completion arrives as [`NxEvent::Connected`] /
    /// [`NxEvent::Refused`] carrying `user_token`.
    pub fn connect(&mut self, ctx: &mut Ctx<'_>, dst: (NodeId, u16), user_token: u64) {
        assert!(
            user_token < NX_TOKEN_BASE,
            "application tokens must be below NX_TOKEN_BASE"
        );
        let tok = self.itoken();
        match self.env.outer {
            // Direct mode, or the destination *is* the outer server (a
            // rendezvous address): plain connect.
            None => {
                self.pending.insert(tok, Pending::Direct { user_token });
                ctx.connect(dst, tok);
            }
            Some(outer) if dst.0 == outer.0 => {
                self.pending.insert(tok, Pending::Direct { user_token });
                ctx.connect(dst, tok);
            }
            Some(outer) => {
                self.pending
                    .insert(tok, Pending::OuterForConnect { user_token, dst });
                ctx.connect(outer, tok);
            }
        }
    }

    /// `NXProxyBind`: start listening. Returns `Some(advertised)`
    /// immediately in direct mode; in proxied mode the answer arrives
    /// later as [`NxEvent::Bound`].
    pub fn bind(&mut self, ctx: &mut Ctx<'_>) -> Option<(NodeId, u16)> {
        // Listening on port 0 draws from the ephemeral allocator, which
        // only fails if the whole port space is exhausted — a harness bug.
        #[allow(clippy::expect_used)]
        let port = ctx.listen(0).expect("ephemeral listen failed"); // lint:allow(unwrap-panic)
        self.private_port = Some(port);
        match self.env.outer {
            None => Some((ctx.host(), port)),
            Some(outer) => {
                let tok = self.itoken();
                self.pending
                    .insert(tok, Pending::OuterForBind { client_port: port });
                ctx.connect(outer, tok);
                None
            }
        }
    }

    /// Send application data on an established flow, segmenting large
    /// messages so they pipeline through links and relays. Use this
    /// instead of `ctx.send` for anything that can exceed
    /// [`SEGMENT_BYTES`].
    pub fn send_data<T: std::any::Any + Send>(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        size: u64,
        payload: T,
    ) -> Result<(), SendError> {
        if size <= SEGMENT_BYTES {
            return ctx.send(flow, size, payload);
        }
        let full_segments = (size - 1) / SEGMENT_BYTES; // at least 1
        for _ in 0..full_segments {
            ctx.send(flow, SEGMENT_BYTES, SegMsg::Part)?;
        }
        let tail = size - full_segments * SEGMENT_BYTES;
        ctx.send(
            flow,
            tail,
            SegMsg::Last {
                total: size,
                payload: Box::new(payload),
            },
        )
    }

    /// Feed a raw flow event through the machine.
    pub fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) -> NxHandled {
        match ev {
            FlowEvent::Connected { flow, token, .. } if token >= NX_TOKEN_BASE => {
                match self.pending.remove(&token) {
                    Some(Pending::Direct { user_token }) => NxHandled::Event(NxEvent::Connected {
                        flow,
                        token: user_token,
                    }),
                    Some(Pending::OuterForConnect { user_token, dst }) => {
                        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::ConnectReq { dst });
                        self.await_rep.insert(flow, user_token);
                        NxHandled::Consumed
                    }
                    Some(Pending::OuterForBind { client_port }) => {
                        let client = (ctx.host(), client_port);
                        let _ = ctx.send(flow, CTRL_MSG_BYTES, ProxyMsg::BindReq { client });
                        self.bind_await = Some(flow);
                        NxHandled::Consumed
                    }
                    None => NxHandled::Consumed,
                }
            }
            FlowEvent::Refused { token, .. } if token >= NX_TOKEN_BASE => {
                match self.pending.remove(&token) {
                    Some(Pending::Direct { user_token })
                    | Some(Pending::OuterForConnect { user_token, .. }) => {
                        NxHandled::Event(NxEvent::Refused { token: user_token })
                    }
                    Some(Pending::OuterForBind { .. }) => NxHandled::Event(NxEvent::BindFailed),
                    None => NxHandled::Consumed,
                }
            }
            FlowEvent::Accepted {
                flow, listen_port, ..
            } if Some(listen_port) == self.private_port => {
                NxHandled::Event(NxEvent::Accepted { flow })
            }
            FlowEvent::Closed { flow, .. } if self.await_rep.remove(&flow).is_some() => {
                // Outer died before replying: surface nothing; the
                // Refused timeout path handles user notification in
                // practice via flow teardown.
                NxHandled::Consumed
            }
            other => NxHandled::Flow(other),
        }
    }

    /// Feed a delivery through the machine.
    pub fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) -> NxHandled {
        let flow = msg.flow;
        // Segmented data: swallow body segments; the final segment
        // resurfaces as the whole message.
        if msg.peek::<SegMsg>().is_some() {
            let sent_at = msg.sent_at;
            return match msg.expect::<SegMsg>() {
                SegMsg::Part => NxHandled::Consumed,
                SegMsg::Last { total, payload } => NxHandled::Data(Delivery {
                    flow,
                    size: total,
                    payload,
                    sent_at,
                }),
            };
        }
        if let Some(user_token) = self.await_rep.remove(&flow) {
            return match msg.expect::<ProxyMsg>() {
                ProxyMsg::ConnectRep { ok: true } => NxHandled::Event(NxEvent::Connected {
                    flow,
                    token: user_token,
                }),
                _ => {
                    ctx.close(flow);
                    NxHandled::Event(NxEvent::Refused { token: user_token })
                }
            };
        }
        if self.bind_await == Some(flow) {
            self.bind_await = None;
            return match msg.expect::<ProxyMsg>() {
                ProxyMsg::BindRep { rdv_port } if rdv_port != 0 => match self.env.outer {
                    Some(outer) => {
                        self.bind_ctrl = Some(flow);
                        NxHandled::Event(NxEvent::Bound {
                            advertised: (outer.0, rdv_port),
                        })
                    }
                    // bind_await is only set in proxied mode; if the env
                    // lost its outer address, fail the bind cleanly.
                    None => {
                        ctx.close(flow);
                        NxHandled::Event(NxEvent::BindFailed)
                    }
                },
                _ => {
                    ctx.close(flow);
                    NxHandled::Event(NxEvent::BindFailed)
                }
            };
        }
        NxHandled::Data(msg)
    }
}
