//! Striped bulk transfer as simulation actors (DESIGN.md §6e).
//!
//! One logical transfer is K stripe lanes. Each lane is a pair of
//! actors — a [`StripeSinkActor`] that binds a rendezvous through the
//! outer-shard fleet and a [`StripeSenderActor`] that dials it and
//! blasts that stripe's chunks — sharing one [`StripeCell`] (the
//! in-process state of the striped endpoints). Because each sink
//! binds its own ephemeral port, the K bind keys HRW-spread across
//! the fleet, so each stripe's bytes serialize through a *different*
//! shard's relay queue: the aggregate approaches `K × relay_bw` until
//! the WAN link or the far-side relay saturates — the classic
//! GridFTP parallel-streams curve.
//!
//! Failover is lane-local: a shard crash closes both the sink's bind
//! control flow (the [`NxClient`] auto-rebinds to a surviving shard,
//! breaker-driven) and the sender's relayed data flow (the sender
//! re-polls the advertised address and re-sends the whole stripe).
//! The shared [`StripeReceiver`] absorbs re-delivered chunks by
//! offset, so the reassembled payload is exact regardless of how many
//! times a lane died.

use super::client::{NxClient, NxEvent, NxHandled};
use crate::stripe::{Accept, StripeError, StripeFrame, StripePlan, StripeReceiver, StripeStats};
use netsim::prelude::*;
use std::sync::Arc;
use wacs_sync::Mutex;

/// App-level poll/redial timer token for stripe senders (must stay
/// below `NX_TOKEN_BASE`).
pub const STRIPE_POLL: u64 = 5;

/// Declared wire size of a stripe frame's header portion; `Data`
/// frames add their chunk bytes on top (sim timing only — the real
/// codec's header is a few bytes smaller).
pub const STRIPE_HDR_BYTES: u64 = 32;

/// Shared state of one logical striped transfer: what the sink actors
/// advertise, the one reassembler every lane feeds, and completion /
/// failure bookkeeping the harness asserts on.
pub struct StripeCellState {
    /// Rendezvous address of each stripe's sink (None until bound, and
    /// again after a `BindLost` until the re-bind lands).
    pub advertised: Vec<Option<(NodeId, u16)>>,
    /// The receiver side: one reassembler fed by every lane.
    pub receiver: StripeReceiver,
    /// Virtual time the first chunk arrived.
    pub first_data_ns: Option<u64>,
    /// Virtual time each lane's first chunk arrived.
    pub lane_first_ns: Vec<Option<u64>>,
    /// Distinct payload bytes received per lane (duplicates excluded).
    pub lane_bytes: Vec<u64>,
    /// Lanes whose every chunk is covered (per-lane span recorded).
    pub lane_done: Vec<bool>,
    /// Virtual time the transfer reassembled completely.
    pub done_at_ns: Option<u64>,
    /// Sender lanes re-dialed after a mid-transfer flow death.
    pub failovers: u64,
    /// Typed reassembly errors (must stay empty in a healthy run —
    /// the chaos tests assert on it).
    pub errors: Vec<StripeError>,
}

pub type StripeCell = Arc<Mutex<StripeCellState>>;

/// Fresh shared state for a transfer of `stripes` lanes.
pub fn stripe_cell(stripes: u16) -> StripeCell {
    Arc::new(Mutex::new(StripeCellState {
        advertised: vec![None; usize::from(stripes)],
        receiver: StripeReceiver::new(),
        first_data_ns: None,
        lane_first_ns: vec![None; usize::from(stripes)],
        lane_bytes: vec![0; usize::from(stripes)],
        lane_done: vec![false; usize::from(stripes)],
        done_at_ns: None,
        failovers: 0,
        errors: Vec::new(),
    }))
}

/// Receiver-side actor of one stripe lane: binds a rendezvous (via
/// the fleet or a single outer server — whatever its [`NxClient`] is
/// configured for) and feeds arriving frames to the cell's shared
/// reassembler.
pub struct StripeSinkActor {
    nx: NxClient,
    stripe: u16,
    cell: StripeCell,
    stats: Option<StripeStats>,
}

impl StripeSinkActor {
    pub fn new(nx: NxClient, stripe: u16, cell: StripeCell) -> Self {
        StripeSinkActor {
            nx,
            stripe,
            cell,
            stats: None,
        }
    }

    /// Record `wacs.stripe.*` counters for frames this sink ingests.
    pub fn with_stats(mut self, stats: StripeStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Account one fresh chunk of `lane` and, if that covered the
    /// lane's last hole, close its span: `wacs.stripe.stripe_ns` and
    /// `stripe_bytes_per_sec` measure first chunk arrival → full lane
    /// coverage, receiver side (failover replays extend the span,
    /// which is exactly the cost a failover has).
    fn lane_progress(
        stats: &Option<StripeStats>,
        c: &mut StripeCellState,
        lane: u16,
        n: u64,
        now: u64,
    ) {
        let l = usize::from(lane);
        if c.lane_first_ns[l].is_none() {
            c.lane_first_ns[l] = Some(now);
        }
        c.lane_bytes[l] += n;
        if !c.lane_done[l] && c.receiver.missing_on(lane).is_empty() {
            c.lane_done[l] = true;
            if let Some(s) = stats {
                let t0 = c.lane_first_ns[l].unwrap_or(now);
                let dt = now.saturating_sub(t0).max(1);
                s.stripe_ns.record(dt);
                s.stripe_bytes_per_sec
                    .record(c.lane_bytes[l].saturating_mul(1_000_000_000) / dt);
            }
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.cell.lock().advertised[usize::from(self.stripe)] = Some(advertised);
            }
            NxHandled::Event(NxEvent::BindLost) => {
                // The rendezvous died with its shard: withdraw it so
                // senders stop dialing a dead address. The re-bind is
                // already underway inside the client machine.
                self.cell.lock().advertised[usize::from(self.stripe)] = None;
            }
            NxHandled::Data(d) => {
                let frame = d.expect::<StripeFrame>();
                let lane = match &frame {
                    StripeFrame::Data { stripe, bytes, .. } => Some((*stripe, bytes.len() as u64)),
                    _ => None,
                };
                let now = ctx.now().nanos();
                let mut c = self.cell.lock();
                if lane.is_some() && c.first_data_ns.is_none() {
                    c.first_data_ns = Some(now);
                }
                match c.receiver.ingest(&frame) {
                    Ok(Accept::Complete) => {
                        c.done_at_ns = Some(now);
                        if let Some((l, n)) = lane {
                            Self::lane_progress(&self.stats, &mut c, l, n, now);
                        }
                        if let Some(s) = &self.stats {
                            if lane.is_some() {
                                s.chunks_received.inc();
                            }
                            s.transfers.inc();
                            if let Some(t0) = c.first_data_ns {
                                s.transfer_ns.record(now.saturating_sub(t0));
                            }
                        }
                    }
                    Ok(Accept::Duplicate) => {
                        if let Some(s) = &self.stats {
                            s.dup_chunks.inc();
                        }
                    }
                    Ok(Accept::Fresh) => {
                        if let Some((l, n)) = lane {
                            Self::lane_progress(&self.stats, &mut c, l, n, now);
                            if let Some(s) = &self.stats {
                                s.chunks_received.inc();
                            }
                        }
                    }
                    Err(e) => {
                        if let Some(s) = &self.stats {
                            if matches!(e, StripeError::Conflict { .. }) {
                                s.conflicts.inc();
                            }
                        }
                        c.errors.push(e);
                    }
                }
            }
            _ => {}
        }
    }
}

impl Actor for StripeSinkActor {
    fn name(&self) -> &str {
        "stripe-sink"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.cell.lock().advertised[usize::from(self.stripe)] = Some(adv);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Sender-side actor of one stripe lane: polls the cell for its
/// stripe's advertised rendezvous, dials it, and blasts `Open`, every
/// chunk of the stripe in sequence order, then `Fin`. A torn flow
/// before completion re-polls and re-sends the whole stripe — the
/// receiver's offset dedup makes the retransmit idempotent.
pub struct StripeSenderActor {
    nx: NxClient,
    stripe: u16,
    cell: StripeCell,
    payload: Arc<Vec<u8>>,
    plan: StripePlan,
    transfer: u64,
    tag: i32,
    start_at: SimDuration,
    flow: Option<FlowId>,
    attempts: u64,
    stats: Option<StripeStats>,
}

impl StripeSenderActor {
    pub fn new(
        nx: NxClient,
        stripe: u16,
        cell: StripeCell,
        payload: Arc<Vec<u8>>,
        plan: StripePlan,
        transfer: u64,
        start_at: SimDuration,
    ) -> Self {
        StripeSenderActor {
            nx,
            stripe,
            cell,
            payload,
            plan,
            transfer,
            tag: 0,
            start_at,
            flow: None,
            attempts: 0,
            stats: None,
        }
    }

    /// Record `wacs.stripe.*` counters for this lane's sends.
    pub fn with_stats(mut self, stats: StripeStats) -> Self {
        self.stats = Some(stats);
        self
    }

    fn poll_soon(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(10), STRIPE_POLL);
    }

    fn done(&self) -> bool {
        self.cell.lock().done_at_ns.is_some()
    }

    /// Blast the whole stripe on `flow`: Open, chunks in seq order,
    /// Fin. Declared sizes drive virtual-time cost; large chunks are
    /// segmented by the client machine so they pipeline through the
    /// relay.
    fn blast(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) {
        let open = StripeFrame::Open {
            transfer: self.transfer,
            stripe: self.stripe,
            stripes: self.plan.stripes(),
            chunk: self.plan.chunk_bytes(),
            total_len: self.plan.total_len(),
            tag: self.tag,
        };
        let _ = self.nx.send_data(ctx, flow, STRIPE_HDR_BYTES, open);
        let mut chunks = 0u64;
        for (seq, offset, len) in self
            .plan
            .iter_stripe(self.stripe)
            .collect::<Vec<_>>()
            .into_iter()
        {
            let start = offset as usize;
            let bytes = self.payload[start..start + len as usize].to_vec();
            let frame = StripeFrame::Data {
                transfer: self.transfer,
                stripe: self.stripe,
                seq,
                offset,
                bytes,
            };
            let _ = self
                .nx
                .send_data(ctx, flow, STRIPE_HDR_BYTES + u64::from(len), frame);
            chunks += 1;
        }
        let fin = StripeFrame::Fin {
            transfer: self.transfer,
            stripe: self.stripe,
            chunks: self.plan.chunks_on(self.stripe),
        };
        let _ = self.nx.send_data(ctx, flow, STRIPE_HDR_BYTES, fin);
        if let Some(s) = &self.stats {
            s.chunks_sent.add(chunks);
            if self.attempts > 1 {
                s.resent_chunks.add(chunks);
            }
        }
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.flow = Some(flow);
                self.attempts += 1;
                if self.attempts > 1 {
                    self.cell.lock().failovers += 1;
                    if let Some(s) = &self.stats {
                        s.failovers.inc();
                    }
                }
                self.blast(ctx, flow);
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                self.poll_soon(ctx);
            }
            NxHandled::Flow(FlowEvent::Closed { flow, .. }) if Some(flow) == self.flow => {
                self.flow = None;
                if !self.done() {
                    // Lane death mid-transfer: the sink is re-binding;
                    // keep polling until a fresh rendezvous appears,
                    // then re-send the stripe.
                    self.poll_soon(ctx);
                }
            }
            _ => {}
        }
    }
}

impl Actor for StripeSenderActor {
    fn name(&self) -> &str {
        "stripe-sender"
    }

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, STRIPE_POLL);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == STRIPE_POLL && self.flow.is_none() && !self.done() {
            let adv = self.cell.lock().advertised[usize::from(self.stripe)];
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 11),
                None => self.poll_soon(ctx),
            }
        }
    }

    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}
