//! Virtual-time implementation of the Nexus Proxy, as `netsim` actors.
//!
//! The protocol is the same as the real one (`crate::protocol`); here
//! the control messages are typed payloads and the relay cost model is
//! explicit: a relay server is a single select-loop process, so all
//! messages it forwards are *serialized* through one service queue with
//! a per-message processing cost and a copy bandwidth
//! ([`RelayModel`]). That model is what produces the paper's Table 2
//! shape — per-message latency grows by the per-hop relay cost, while
//! large transfers pipeline and approach `min(path_bw, relay_bw)`.

pub mod client;
pub mod inner;
pub mod outer;
pub mod stripe;

pub use client::{NxClient, NxEvent, NxHandled, RetryPolicy, SimProxyEnv};
pub use inner::SimInnerServer;
pub use outer::SimOuterServer;
pub use stripe::{stripe_cell, StripeCell, StripeCellState, StripeSenderActor, StripeSinkActor};

use crate::shard::{member_tag, ShardMap};
use netsim::prelude::*;
use std::collections::{HashMap, VecDeque};
use wacs_obs::{Histogram, Registry};

/// Control messages exchanged with the proxy servers (sim payloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyMsg {
    ConnectReq {
        dst: (NodeId, u16),
    },
    ConnectRep {
        ok: bool,
    },
    BindReq {
        client: (NodeId, u16),
        /// The client could not reach the HRW owner of this bind key
        /// (breaker open / dials failing) and is knowingly asking a
        /// non-owner to serve; do not redirect back.
        fallback: bool,
    },
    BindRep {
        rdv_port: u16,
    },
    RelayReq {
        client: (NodeId, u16),
    },
    RelayRep {
        ok: bool,
    },
    /// Typed admission-control refusal (instead of a silent accept).
    Busy,
    /// Outer→inner liveness probe on the control session.
    Ping {
        seq: u32,
    },
    Pong {
        seq: u32,
    },
    /// Outer→inner: full replacement of the authorized bind table
    /// (of the sending shard's slice, in a fleet).
    BindSync {
        binds: Vec<(NodeId, u16)>,
    },
    /// Outer→client: this shard does not own the requested bind key;
    /// retry against the owner's control endpoint.
    Redirect {
        owner: (NodeId, u16),
    },
    /// Fleet membership, generation-counted (the shard-map twin of
    /// `BindSync`). `sender` indexes `members` and names the
    /// authorization slice of the announcing control session.
    ShardSync {
        gen: u64,
        sender: u16,
        members: Vec<(NodeId, u16)>,
    },
}

/// Declared wire size of a control message (bytes).
pub const CTRL_MSG_BYTES: u64 = 32;

/// Stable shard key for a sim endpoint — the sim twin of
/// [`crate::shard::bind_key`] (node id stands in for the host name).
pub fn sim_shard_key(ep: (NodeId, u16)) -> Vec<u8> {
    let mut v = Vec::with_capacity(7);
    v.extend_from_slice(&ep.0 .0.to_be_bytes());
    v.push(b':');
    v.extend_from_slice(&ep.1.to_be_bytes());
    v
}

/// Derive the fleet [`ShardMap`] from sim member endpoints; every
/// party holding the same list computes the same ownership.
pub fn sim_shard_map(generation: u64, members: &[(NodeId, u16)]) -> ShardMap {
    let tags = members
        .iter()
        .map(|m| member_tag(&sim_shard_key(*m)))
        .collect();
    ShardMap::new(generation, tags)
}

/// Cost model of one relay server process.
#[derive(Debug, Clone, Copy)]
pub struct RelayModel {
    /// Fixed per-message service cost (select wakeup, two kernel
    /// crossings, Nexus message dispatch — dominant for small
    /// messages; calibrated against Table 2's 25 ms proxied latency).
    pub per_message: SimDuration,
    /// Copy bandwidth of the relay (bytes/s) — the user-level
    /// read/write path; dominant for bulk transfers.
    pub bandwidth: f64,
}

impl Default for RelayModel {
    fn default() -> Self {
        RelayModel {
            per_message: SimDuration::from_millis(12),
            bandwidth: 400e3,
        }
    }
}

impl RelayModel {
    pub fn service_time(&self, bytes: u64) -> SimDuration {
        self.per_message + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// Timer token used by the relay queue (relay actors must reserve it).
pub const RELAY_TIMER: u64 = u64::MAX - 1;

/// Timer token for the outer server's heartbeat tick (reserved).
pub const HB_TICK: u64 = u64::MAX - 2;

/// Timer token for re-dialing the inner control session after a dead
/// peer or a refused dial (reserved).
pub const HB_RETRY: u64 = u64::MAX - 3;

/// Observability handles for one relay actor's data path: the inbound
/// leg (origin send → relay arrival) and the service gap (arrival →
/// forward), the two components a relay hop contributes to an
/// end-to-end latency decomposition.
struct RelayObs {
    leg_in: Histogram,
    service: Histogram,
}

/// The relaying heart shared by the outer and inner server actors:
/// flow pairing, early-data buffering, and a serialized service queue
/// implementing [`RelayModel`].
pub struct RelayCore {
    model: RelayModel,
    pairs: HashMap<FlowId, FlowId>,
    /// Data that arrived on a flow before its pair existed, with its
    /// arrival time (service accounting starts at arrival, not at the
    /// later pairing).
    buffered: HashMap<FlowId, Vec<(u64, Payload, SimTime)>>,
    /// (out_flow, size, payload, arrived_at) in service order.
    queue: VecDeque<(FlowId, u64, Payload, SimTime)>,
    busy_until: SimTime,
    /// Total messages forwarded (diagnostics).
    pub forwarded: u64,
    pub forwarded_bytes: u64,
    obs: Option<RelayObs>,
}

impl RelayCore {
    pub fn new(model: RelayModel) -> Self {
        RelayCore {
            model,
            pairs: HashMap::new(),
            buffered: HashMap::new(),
            queue: VecDeque::new(),
            busy_until: SimTime::ZERO,
            forwarded: 0,
            forwarded_bytes: 0,
            obs: None,
        }
    }

    /// Record per-message leg-in and service durations under
    /// `<prefix>.leg_in_ns` / `<prefix>.service_ns` in `registry`.
    pub fn set_obs(&mut self, registry: &Registry, prefix: &str) {
        self.obs = Some(RelayObs {
            leg_in: registry.histogram(&format!("{prefix}.leg_in_ns")),
            service: registry.histogram(&format!("{prefix}.service_ns")),
        });
    }

    pub fn is_paired(&self, f: FlowId) -> bool {
        self.pairs.contains_key(&f)
    }

    pub fn pair_of(&self, f: FlowId) -> Option<FlowId> {
        self.pairs.get(&f).copied()
    }

    /// Bridge two flows; any early data buffered on either side is
    /// scheduled for forwarding immediately.
    pub fn pair(&mut self, ctx: &mut Ctx<'_>, f: FlowId, g: FlowId) {
        self.pairs.insert(f, g);
        self.pairs.insert(g, f);
        for (from, to) in [(f, g), (g, f)] {
            if let Some(pending) = self.buffered.remove(&from) {
                for (size, payload, arrived_at) in pending {
                    self.enqueue(ctx, to, size, payload, arrived_at);
                }
            }
        }
    }

    /// Handle a data delivery on a relayed flow: forward to the pair,
    /// or buffer if pairing is still in progress. `sent_at` is the
    /// delivery's origin timestamp (`Delivery::sent_at`), used for the
    /// inbound-leg latency histogram.
    pub fn on_data(
        &mut self,
        ctx: &mut Ctx<'_>,
        flow: FlowId,
        size: u64,
        payload: Payload,
        sent_at: SimTime,
    ) {
        let now = ctx.now();
        if let Some(o) = &self.obs {
            o.leg_in.record(now.since(sent_at).nanos());
        }
        match self.pairs.get(&flow) {
            Some(&out) => self.enqueue(ctx, out, size, payload, now),
            None => self
                .buffered
                .entry(flow)
                .or_default()
                .push((size, payload, now)),
        }
    }

    fn enqueue(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: FlowId,
        size: u64,
        payload: Payload,
        arrived_at: SimTime,
    ) {
        let start = self.busy_until.max(ctx.now());
        let finish = start + self.model.service_time(size);
        self.busy_until = finish;
        self.queue.push_back((out, size, payload, arrived_at));
        ctx.set_timer(finish.since(ctx.now()), RELAY_TIMER);
    }

    /// Must be called from the owner's `on_timer` for [`RELAY_TIMER`]:
    /// forwards exactly one queued message.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>) {
        if let Some((out, size, payload, arrived_at)) = self.queue.pop_front() {
            self.forwarded += 1;
            self.forwarded_bytes += size;
            if let Some(o) = &self.obs {
                o.service.record(ctx.now().since(arrived_at).nanos());
            }
            // The pair may have died while the message was in service.
            let _ = ctx.send_boxed(out, size, payload);
        }
    }

    /// A relayed flow closed: close its pair too (select-loop relays
    /// tear bridged pairs down together). Returns the pair if any.
    pub fn on_closed(&mut self, ctx: &mut Ctx<'_>, flow: FlowId) -> Option<FlowId> {
        self.buffered.remove(&flow);
        if let Some(pair) = self.pairs.remove(&flow) {
            self.pairs.remove(&pair);
            ctx.close(pair);
            Some(pair)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relay_model_costs() {
        let m = RelayModel {
            per_message: SimDuration::from_millis(10),
            bandwidth: 1e6,
        };
        // 0-byte message: pure per-message cost.
        assert_eq!(m.service_time(0), SimDuration::from_millis(10));
        // 1 MB at 1 MB/s: ~1.01 s.
        let t = m.service_time(1_000_000);
        assert!(t >= SimDuration::from_millis(1009));
        assert!(t <= SimDuration::from_millis(1011));
    }
}
