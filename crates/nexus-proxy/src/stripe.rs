//! Striped parallel bulk transfer: one logical payload over K relay
//! flows (DESIGN.md §6e).
//!
//! The paper's relay pushes every bulk byte through a single
//! select-loop process, so one WAN transfer can never move faster
//! than one relay's copy bandwidth. The GridFTP literature closes
//! that gap with parallel TCP streams; this module is that idea
//! rebuilt on the workspace's own machinery:
//!
//! * a [`StripePlan`] cuts the payload into fixed-size chunks and
//!   deals them round-robin onto `stripes` flows, so every stripe
//!   carries an arithmetically-determined set of `(seq, offset)`
//!   chunks — no side channel is needed to describe the split;
//! * [`StripeFrame`] is the wire format riding *inside* the opaque
//!   relay pipe (the relay copies, never parses — framing is parsed
//!   only by the endpoints), with the same length-prefix + type-byte
//!   + cap-before-allocation discipline as the control protocol;
//! * the [`Reassembler`] accepts chunks in any arrival order, drops
//!   duplicate deliveries (a stripe that failed over re-sends from
//!   the start; PR 3's per-pair sequence dedup cannot help because
//!   parallel flows break the FIFO-per-pair assumption it relies
//!   on), and reports completion exactly once, only when every
//!   offset is covered. A re-delivered chunk whose bytes disagree
//!   with what is already down is a typed [`StripeError::Conflict`]
//!   — never silent corruption.
//!
//! The per-stripe sequence space is the PR 3 idea applied per flow:
//! within one stripe, chunks are sent in `seq` order on one FIFO
//! connection, so `(stripe, seq)` names a chunk globally and the
//! receiver can dedup at chunk granularity across reconnects.

use crate::hook::{interpose, DialHook, DialLeg};
use crate::protocol::{bad, put_u16, put_u32, put_u64, Cursor};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use wacs_obs::{Counter, Histogram, Registry};
use wacs_sync::Mutex;

/// Most stripes one transfer may use (fan-out bound).
pub const MAX_STRIPES: u16 = 64;

/// Largest chunk the wire format will carry (cap-before-allocation:
/// the peer controls the declared sizes).
pub const MAX_CHUNK_BYTES: u32 = 1 << 20;

/// Largest reassembled transfer a receiver will stage in memory.
pub const MAX_TRANSFER_BYTES: u64 = 1 << 30;

/// Most chunks one transfer may have (bounds the coverage bitmap a
/// peer-controlled `Open` makes the receiver allocate).
pub const MAX_CHUNKS: u64 = 1 << 20;

/// Default chunk size: one relay segment's worth of payload.
pub const DEFAULT_CHUNK_BYTES: u32 = 64 * 1024;

/// Upper bound on one stripe frame (header slack + chunk body).
pub const MAX_STRIPE_FRAME: u32 = MAX_CHUNK_BYTES + 64;

/// Typed stripe-layer failure. Every decode or reassembly problem is
/// one of these — the bulk path never guesses and never silently
/// corrupts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StripeError {
    /// The plan parameters are unrepresentable (zero/oversize stripe
    /// count, chunk size, transfer length, or chunk count).
    BadPlan { reason: &'static str },
    /// A frame for a different transfer id arrived on this flow.
    WrongTransfer { got: u64, want: u64 },
    /// A repeated `Open` disagreed with the installed geometry.
    GeometryMismatch,
    /// A frame arrived before any `Open` established the geometry.
    NotOpened,
    /// The stripe index is outside the plan's stripe count.
    StripeOutOfRange { stripe: u16, stripes: u16 },
    /// The per-stripe sequence number names no chunk in the plan.
    SeqOutOfRange { stripe: u16, seq: u64 },
    /// The declared offset disagrees with the plan's arithmetic.
    WrongOffset { expected: u64, got: u64 },
    /// The chunk body length disagrees with the plan's arithmetic.
    WrongLength { expected: u32, got: u64 },
    /// A duplicate delivery carried different bytes than the copy
    /// already written — corruption, surfaced instead of absorbed.
    Conflict { offset: u64 },
    /// The payload was requested while offsets are still uncovered.
    Incomplete { missing: u64 },
}

impl std::fmt::Display for StripeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StripeError::BadPlan { reason } => write!(f, "bad stripe plan: {reason}"),
            StripeError::WrongTransfer { got, want } => {
                write!(f, "frame for transfer {got} on a flow serving {want}")
            }
            StripeError::GeometryMismatch => {
                write!(f, "re-opened transfer with different geometry")
            }
            StripeError::NotOpened => write!(f, "stripe data before Open"),
            StripeError::StripeOutOfRange { stripe, stripes } => {
                write!(f, "stripe {stripe} out of range (plan has {stripes})")
            }
            StripeError::SeqOutOfRange { stripe, seq } => {
                write!(f, "seq {seq} names no chunk on stripe {stripe}")
            }
            StripeError::WrongOffset { expected, got } => {
                write!(f, "chunk offset {got} where the plan says {expected}")
            }
            StripeError::WrongLength { expected, got } => {
                write!(f, "chunk length {got} where the plan says {expected}")
            }
            StripeError::Conflict { offset } => {
                write!(f, "conflicting duplicate chunk at offset {offset}")
            }
            StripeError::Incomplete { missing } => {
                write!(f, "transfer incomplete: {missing} chunks missing")
            }
        }
    }
}

impl std::error::Error for StripeError {}

impl From<StripeError> for io::Error {
    fn from(e: StripeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// How one logical payload is dealt onto parallel flows: fixed-size
/// chunks, round-robin. Chunk `i` lives at offset `i * chunk`, rides
/// stripe `i % stripes` as that stripe's sequence number
/// `i / stripes`. Pure arithmetic — every party derives the same
/// layout from `(total_len, stripes, chunk)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripePlan {
    total_len: u64,
    stripes: u16,
    chunk: u32,
}

impl StripePlan {
    pub fn new(total_len: u64, stripes: u16, chunk: u32) -> Result<StripePlan, StripeError> {
        if stripes == 0 || stripes > MAX_STRIPES {
            return Err(StripeError::BadPlan {
                reason: "stripe count out of range",
            });
        }
        if chunk == 0 || chunk > MAX_CHUNK_BYTES {
            return Err(StripeError::BadPlan {
                reason: "chunk size out of range",
            });
        }
        if total_len > MAX_TRANSFER_BYTES {
            return Err(StripeError::BadPlan {
                reason: "transfer too large to stage",
            });
        }
        let plan = StripePlan {
            total_len,
            stripes,
            chunk,
        };
        if plan.chunk_count() > MAX_CHUNKS {
            return Err(StripeError::BadPlan {
                reason: "too many chunks",
            });
        }
        Ok(plan)
    }

    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    pub fn stripes(&self) -> u16 {
        self.stripes
    }

    pub fn chunk_bytes(&self) -> u32 {
        self.chunk
    }

    /// Number of chunks in the whole transfer.
    pub fn chunk_count(&self) -> u64 {
        self.total_len.div_ceil(u64::from(self.chunk))
    }

    /// Stripe carrying global chunk `idx`.
    pub fn stripe_of(&self, idx: u64) -> u16 {
        (idx % u64::from(self.stripes)) as u16
    }

    /// Per-stripe sequence number of global chunk `idx`.
    pub fn seq_of(&self, idx: u64) -> u64 {
        idx / u64::from(self.stripes)
    }

    /// Byte offset of global chunk `idx`.
    pub fn offset_of(&self, idx: u64) -> u64 {
        idx * u64::from(self.chunk)
    }

    /// Byte length of global chunk `idx` (the tail chunk may be short).
    pub fn len_of(&self, idx: u64) -> u32 {
        let start = self.offset_of(idx);
        let end = (start + u64::from(self.chunk)).min(self.total_len);
        (end - start) as u32
    }

    /// Global chunk index of `(stripe, seq)`, if the plan contains it.
    pub fn chunk_index(&self, stripe: u16, seq: u64) -> Option<u64> {
        if stripe >= self.stripes {
            return None;
        }
        let idx = seq
            .checked_mul(u64::from(self.stripes))?
            .checked_add(u64::from(stripe))?;
        (idx < self.chunk_count()).then_some(idx)
    }

    /// Number of chunks dealt onto `stripe`.
    pub fn chunks_on(&self, stripe: u16) -> u64 {
        if stripe >= self.stripes {
            return 0;
        }
        let n = self.chunk_count();
        let s = u64::from(self.stripes);
        let extra = u64::from(n % s > u64::from(stripe));
        n / s + extra
    }

    /// `(seq, offset, len)` of every chunk on `stripe`, in send order.
    pub fn iter_stripe(&self, stripe: u16) -> impl Iterator<Item = (u64, u64, u32)> + '_ {
        (0..self.chunks_on(stripe)).map(move |seq| {
            // chunks_on bounds seq, so the index is always present.
            let idx = seq * u64::from(self.stripes) + u64::from(stripe);
            (seq, self.offset_of(idx), self.len_of(idx))
        })
    }
}

/// One frame of the bulk-data plane. Framing mirrors the control
/// protocol (`u32` BE length, type byte, body), but these frames ride
/// *inside* a relayed pipe: relays forward them as opaque bytes and
/// only the transfer endpoints parse them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StripeFrame {
    /// First frame on every stripe flow: the full transfer geometry,
    /// so any one surviving flow suffices to build the reassembler.
    /// Re-sent after a stripe failover; repeats must agree.
    Open {
        transfer: u64,
        stripe: u16,
        stripes: u16,
        chunk: u32,
        total_len: u64,
        /// Application tag delivered with the reassembled payload
        /// (gridmpi's message tag; 0 where unused).
        tag: i32,
    },
    /// One chunk. `(stripe, seq)` names it in the plan; `offset` is
    /// carried redundantly and cross-checked against the plan's
    /// arithmetic on receipt.
    Data {
        transfer: u64,
        stripe: u16,
        seq: u64,
        offset: u64,
        bytes: Vec<u8>,
    },
    /// The sender finished this stripe; `chunks` is the count it sent
    /// (cross-checked against the plan).
    Fin {
        transfer: u64,
        stripe: u16,
        chunks: u64,
    },
    /// Receiver → sender acknowledgement: the whole transfer
    /// reassembled to `total_len` bytes.
    Done { transfer: u64, total_len: u64 },
}

impl StripeFrame {
    /// The transfer id every frame variant carries.
    pub fn transfer_id(&self) -> u64 {
        match self {
            StripeFrame::Open { transfer, .. }
            | StripeFrame::Data { transfer, .. }
            | StripeFrame::Fin { transfer, .. }
            | StripeFrame::Done { transfer, .. } => *transfer,
        }
    }
}

const T_OPEN: u8 = 1;
const T_DATA: u8 = 2;
const T_FIN: u8 = 3;
const T_DONE: u8 = 4;

/// Reject a declared stripe-frame length before any allocation sized
/// by it (the prefix is peer-controlled).
fn check_stripe_frame_len(len: u32) -> io::Result<()> {
    if len == 0 || len > MAX_STRIPE_FRAME {
        return Err(bad(&format!(
            "bad stripe frame length {len} (cap {MAX_STRIPE_FRAME} bytes)"
        )));
    }
    Ok(())
}

impl StripeFrame {
    /// Encode the frame body (type byte + fields, no length prefix).
    pub fn encode_body(&self) -> Result<Vec<u8>, StripeError> {
        let mut body = Vec::with_capacity(40);
        match self {
            StripeFrame::Open {
                transfer,
                stripe,
                stripes,
                chunk,
                total_len,
                tag,
            } => {
                body.push(T_OPEN);
                put_u64(&mut body, *transfer);
                put_u16(&mut body, *stripe);
                put_u16(&mut body, *stripes);
                put_u32(&mut body, *chunk);
                put_u64(&mut body, *total_len);
                body.extend_from_slice(&tag.to_be_bytes());
            }
            StripeFrame::Data {
                transfer,
                stripe,
                seq,
                offset,
                bytes,
            } => {
                if bytes.len() > MAX_CHUNK_BYTES as usize {
                    return Err(StripeError::WrongLength {
                        expected: MAX_CHUNK_BYTES,
                        got: bytes.len() as u64,
                    });
                }
                body.reserve(bytes.len());
                body.push(T_DATA);
                put_u64(&mut body, *transfer);
                put_u16(&mut body, *stripe);
                put_u64(&mut body, *seq);
                put_u64(&mut body, *offset);
                body.extend_from_slice(bytes);
            }
            StripeFrame::Fin {
                transfer,
                stripe,
                chunks,
            } => {
                body.push(T_FIN);
                put_u64(&mut body, *transfer);
                put_u16(&mut body, *stripe);
                put_u64(&mut body, *chunks);
            }
            StripeFrame::Done {
                transfer,
                total_len,
            } => {
                body.push(T_DONE);
                put_u64(&mut body, *transfer);
                put_u64(&mut body, *total_len);
            }
        }
        Ok(body)
    }

    /// Encode with the `u32` BE length prefix for stream transports.
    pub fn encode(&self) -> Result<Vec<u8>, StripeError> {
        let body = self.encode_body()?;
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
        framed.extend_from_slice(&body);
        Ok(framed)
    }

    /// Decode one frame body (no length prefix). Total: every read is
    /// bounds-checked and every declared size capped.
    pub fn decode_body(body: &[u8]) -> io::Result<StripeFrame> {
        if body.len() > MAX_STRIPE_FRAME as usize {
            return Err(bad("oversize stripe frame body"));
        }
        let mut cur = Cursor { rest: body };
        if cur.rest.is_empty() {
            return Err(bad("empty stripe frame"));
        }
        let t = cur.get_u8()?;
        let frame = match t {
            T_OPEN => {
                let transfer = cur.get_u64()?;
                let stripe = cur.get_u16()?;
                let stripes = cur.get_u16()?;
                let chunk = cur.get_u32()?;
                let total_len = cur.get_u64()?;
                let tag = cur.get_i32()?;
                StripeFrame::Open {
                    transfer,
                    stripe,
                    stripes,
                    chunk,
                    total_len,
                    tag,
                }
            }
            T_DATA => {
                let transfer = cur.get_u64()?;
                let stripe = cur.get_u16()?;
                let seq = cur.get_u64()?;
                let offset = cur.get_u64()?;
                // The chunk body is the remainder of the frame; the
                // frame cap already bounds it.
                let bytes = cur.take(cur.rest.len())?.to_vec();
                StripeFrame::Data {
                    transfer,
                    stripe,
                    seq,
                    offset,
                    bytes,
                }
            }
            T_FIN => {
                let transfer = cur.get_u64()?;
                let stripe = cur.get_u16()?;
                let chunks = cur.get_u64()?;
                StripeFrame::Fin {
                    transfer,
                    stripe,
                    chunks,
                }
            }
            T_DONE => {
                let transfer = cur.get_u64()?;
                let total_len = cur.get_u64()?;
                StripeFrame::Done {
                    transfer,
                    total_len,
                }
            }
            other => return Err(bad(&format!("unknown stripe frame type {other}"))),
        };
        if !cur.rest.is_empty() {
            return Err(bad("trailing bytes in stripe frame"));
        }
        Ok(frame)
    }

    /// Write one framed stripe frame to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let framed = self.encode().map_err(io::Error::from)?;
        w.write_all(&framed)?;
        w.flush()
    }

    /// Read one framed stripe frame from a stream.
    pub fn read_from(r: &mut impl Read) -> io::Result<StripeFrame> {
        let mut len = [0u8; 4];
        // Generic `Read`; socket callers own the deadline.
        r.read_exact(&mut len)?; // lint:allow(deadline-io)
        let len = u32::from_be_bytes(len);
        // Cap before the body allocation: the prefix is peer-controlled.
        check_stripe_frame_len(len)?;
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?; // lint:allow(deadline-io)
        StripeFrame::decode_body(&body)
    }
}

/// Outcome of feeding one frame to the [`Reassembler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// New coverage (or a benign repeat of `Open`/`Fin`).
    Fresh,
    /// A byte-identical duplicate delivery, absorbed.
    Duplicate,
    /// This frame completed the transfer — reported exactly once.
    Complete,
}

/// Receiver-side reassembly of one striped transfer.
///
/// Chunks may arrive in any interleaving across stripes, and any
/// chunk may arrive more than once (a failed-over stripe re-sends
/// from seq 0). Invariants the `wacs-check` `stripe` model verifies
/// exhaustively: completion is reported exactly once, if and only if
/// every offset is covered; duplicates never change state; a
/// conflicting duplicate is a typed error.
pub struct Reassembler {
    transfer: u64,
    tag: i32,
    plan: StripePlan,
    data: Vec<u8>,
    received: Vec<bool>,
    received_count: u64,
    duplicates: u64,
    completed: bool,
}

impl Reassembler {
    pub fn new(transfer: u64, tag: i32, plan: StripePlan) -> Reassembler {
        Reassembler {
            transfer,
            tag,
            plan,
            data: vec![0; plan.total_len() as usize],
            received: vec![false; plan.chunk_count() as usize],
            received_count: 0,
            duplicates: 0,
            completed: false,
        }
    }

    /// Build from the geometry carried by an [`StripeFrame::Open`].
    pub fn open(frame: &StripeFrame) -> Result<Reassembler, StripeError> {
        let StripeFrame::Open {
            transfer,
            stripes,
            chunk,
            total_len,
            tag,
            ..
        } = frame
        else {
            return Err(StripeError::NotOpened);
        };
        let plan = StripePlan::new(*total_len, *stripes, *chunk)?;
        Ok(Reassembler::new(*transfer, *tag, plan))
    }

    pub fn transfer(&self) -> u64 {
        self.transfer
    }

    pub fn tag(&self) -> i32 {
        self.tag
    }

    pub fn plan(&self) -> StripePlan {
        self.plan
    }

    pub fn is_complete(&self) -> bool {
        self.received_count == self.plan.chunk_count()
    }

    /// Chunks accepted so far.
    pub fn covered(&self) -> u64 {
        self.received_count
    }

    /// Byte-identical duplicate deliveries absorbed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Per-stripe sequence numbers still missing — what a failover
    /// retransmit must (at minimum) re-send.
    pub fn missing_on(&self, stripe: u16) -> Vec<u64> {
        self.plan
            .iter_stripe(stripe)
            .filter_map(|(seq, _, _)| {
                let idx = self.plan.chunk_index(stripe, seq)?;
                (!self.received[idx as usize]).then_some(seq)
            })
            .collect()
    }

    /// Feed one frame. `Open` repeats must agree with the installed
    /// geometry; `Data` is offset-deduplicated; `Fin` cross-checks
    /// the sender's chunk count. [`Accept::Complete`] is returned for
    /// exactly one call — the one that covers the last offset (or the
    /// first `Fin` of an empty transfer).
    pub fn accept(&mut self, frame: &StripeFrame) -> Result<Accept, StripeError> {
        match frame {
            StripeFrame::Open {
                transfer,
                stripes,
                chunk,
                total_len,
                tag,
                ..
            } => {
                self.check_transfer(*transfer)?;
                if *stripes != self.plan.stripes()
                    || *chunk != self.plan.chunk_bytes()
                    || *total_len != self.plan.total_len()
                    || *tag != self.tag
                {
                    return Err(StripeError::GeometryMismatch);
                }
                self.maybe_complete()
            }
            StripeFrame::Data {
                transfer,
                stripe,
                seq,
                offset,
                bytes,
            } => {
                self.check_transfer(*transfer)?;
                self.accept_data(*stripe, *seq, *offset, bytes)
            }
            StripeFrame::Fin {
                transfer,
                stripe,
                chunks,
            } => {
                self.check_transfer(*transfer)?;
                if *stripe >= self.plan.stripes() {
                    return Err(StripeError::StripeOutOfRange {
                        stripe: *stripe,
                        stripes: self.plan.stripes(),
                    });
                }
                if *chunks != self.plan.chunks_on(*stripe) {
                    return Err(StripeError::WrongLength {
                        expected: self.plan.chunks_on(*stripe) as u32,
                        got: *chunks,
                    });
                }
                self.maybe_complete()
            }
            StripeFrame::Done { transfer, .. } => {
                self.check_transfer(*transfer)?;
                Ok(Accept::Fresh)
            }
        }
    }

    /// Accept one chunk: plan-checked, offset-deduplicated,
    /// conflict-detecting.
    pub fn accept_data(
        &mut self,
        stripe: u16,
        seq: u64,
        offset: u64,
        bytes: &[u8],
    ) -> Result<Accept, StripeError> {
        if stripe >= self.plan.stripes() {
            return Err(StripeError::StripeOutOfRange {
                stripe,
                stripes: self.plan.stripes(),
            });
        }
        let Some(idx) = self.plan.chunk_index(stripe, seq) else {
            return Err(StripeError::SeqOutOfRange { stripe, seq });
        };
        let expected_offset = self.plan.offset_of(idx);
        if offset != expected_offset {
            return Err(StripeError::WrongOffset {
                expected: expected_offset,
                got: offset,
            });
        }
        let expected_len = self.plan.len_of(idx);
        if bytes.len() as u64 != u64::from(expected_len) {
            return Err(StripeError::WrongLength {
                expected: expected_len,
                got: bytes.len() as u64,
            });
        }
        let start = offset as usize;
        let end = start + bytes.len();
        if self.received[idx as usize] {
            if &self.data[start..end] != bytes {
                return Err(StripeError::Conflict { offset });
            }
            self.duplicates += 1;
            return Ok(Accept::Duplicate);
        }
        self.data[start..end].copy_from_slice(bytes);
        self.received[idx as usize] = true;
        self.received_count += 1;
        self.maybe_complete()
    }

    fn check_transfer(&self, transfer: u64) -> Result<(), StripeError> {
        if transfer != self.transfer {
            return Err(StripeError::WrongTransfer {
                got: transfer,
                want: self.transfer,
            });
        }
        Ok(())
    }

    fn maybe_complete(&mut self) -> Result<Accept, StripeError> {
        if self.is_complete() && !self.completed {
            self.completed = true;
            return Ok(Accept::Complete);
        }
        Ok(Accept::Fresh)
    }

    /// The reassembled payload, if every offset is covered.
    pub fn payload(&self) -> Result<&[u8], StripeError> {
        if !self.is_complete() {
            return Err(StripeError::Incomplete {
                missing: self.plan.chunk_count() - self.received_count,
            });
        }
        Ok(&self.data)
    }

    /// Consume into the reassembled payload.
    pub fn into_payload(self) -> Result<Vec<u8>, StripeError> {
        if !self.is_complete() {
            return Err(StripeError::Incomplete {
                missing: self.plan.chunk_count() - self.received_count,
            });
        }
        Ok(self.data)
    }
}

/// Registry handles for the bulk-data plane, shared by every layer
/// that stripes (gass staging, gridmpi large messages, sim actors).
#[derive(Clone)]
pub struct StripeStats {
    pub chunks_sent: Counter,
    pub chunks_received: Counter,
    pub dup_chunks: Counter,
    pub conflicts: Counter,
    /// Transfers reassembled to completion.
    pub transfers: Counter,
    /// Stripe flows re-dialed after a mid-transfer death.
    pub failovers: Counter,
    /// Chunks re-sent by failover retransmits.
    pub resent_chunks: Counter,
    /// Wall/virtual time one stripe took, send start → last chunk.
    pub stripe_ns: Histogram,
    /// Per-stripe goodput (payload bytes per second).
    pub stripe_bytes_per_sec: Histogram,
    /// Whole-transfer duration, first Open → completion.
    pub transfer_ns: Histogram,
}

impl StripeStats {
    pub fn in_registry(registry: &Registry) -> StripeStats {
        StripeStats {
            chunks_sent: registry.counter("wacs.stripe.chunks_sent"),
            chunks_received: registry.counter("wacs.stripe.chunks_received"),
            dup_chunks: registry.counter("wacs.stripe.dup_chunks"),
            conflicts: registry.counter("wacs.stripe.conflicts"),
            transfers: registry.counter("wacs.stripe.transfers"),
            failovers: registry.counter("wacs.stripe.failovers"),
            resent_chunks: registry.counter("wacs.stripe.resent_chunks"),
            stripe_ns: registry.histogram("wacs.stripe.stripe_ns"),
            stripe_bytes_per_sec: registry.histogram("wacs.stripe.stripe_bytes_per_sec"),
            transfer_ns: registry.histogram("wacs.stripe.transfer_ns"),
        }
    }
}

/// Outcome of a [`send_striped`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReport {
    /// Payload bytes carried (once; retransmits not counted).
    pub bytes: u64,
    /// Chunks in the plan.
    pub chunks: u64,
    /// Stripe flows that needed a fresh dial after an I/O failure.
    pub redials: u64,
}

/// Send `payload` as `plan.stripes()` parallel framed streams, one
/// thread per stripe. `dial(stripe, attempt)` opens (or re-opens) the
/// flow for a stripe; on a mid-stripe I/O failure the stripe is
/// re-dialed up to `max_redials` times and re-sent from the start —
/// the receiver's offset dedup absorbs whatever got through twice.
pub fn send_striped<W, D>(
    payload: &[u8],
    plan: &StripePlan,
    transfer: u64,
    tag: i32,
    max_redials: u32,
    stats: Option<&StripeStats>,
    dial: D,
) -> io::Result<SendReport>
where
    W: Write,
    D: Fn(u16, u32) -> io::Result<W> + Sync,
{
    if payload.len() as u64 != plan.total_len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "payload is {} bytes but the plan says {}",
                payload.len(),
                plan.total_len()
            ),
        ));
    }
    let redials_total = Mutex::new(0u64);
    let result: io::Result<()> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(usize::from(plan.stripes()));
        for stripe in 0..plan.stripes() {
            let dial = &dial;
            let redials_total = &redials_total;
            handles.push(scope.spawn(move || -> io::Result<()> {
                let mut attempt = 0u32;
                loop {
                    match send_one_stripe(payload, plan, transfer, tag, stripe, attempt, dial) {
                        Ok(()) => return Ok(()),
                        Err(e) if attempt < max_redials => {
                            let _ = e;
                            attempt += 1;
                            *redials_total.lock() += 1;
                            if let Some(s) = stats {
                                s.failovers.inc();
                            }
                        }
                        Err(e) => return Err(e),
                    }
                }
            }));
        }
        for h in handles {
            match h.join() {
                Ok(r) => r?,
                Err(_) => {
                    return Err(io::Error::other("stripe sender thread panicked"));
                }
            }
        }
        Ok(())
    });
    result?;
    if let Some(s) = stats {
        s.chunks_sent.add(plan.chunk_count());
    }
    let redials = *redials_total.lock();
    Ok(SendReport {
        bytes: plan.total_len(),
        chunks: plan.chunk_count(),
        redials,
    })
}

/// Adapt a `TcpStream`-producing lane dialer so every lane (and every
/// redial attempt) passes through an optional [`DialHook`] at
/// [`DialLeg::StripeLane`] — the seam the chaos layer uses to fault a
/// single lane of a striped transfer. With `hook == None` this is the
/// plain dialer, unchanged.
pub fn interposed_lane_dial<'a, D>(
    hook: Option<&'a DialHook>,
    from: &'a str,
    dial: D,
) -> impl Fn(u16, u32) -> io::Result<TcpStream> + Sync + 'a
where
    D: Fn(u16, u32) -> io::Result<TcpStream> + Sync + 'a,
{
    move |stripe, attempt| {
        interpose(
            hook,
            DialLeg::StripeLane,
            from,
            "stripe",
            stripe,
            dial(stripe, attempt),
        )
    }
}

/// One attempt at one stripe: dial, Open, every chunk in seq order,
/// Fin. A retry re-sends the whole stripe (receiver dedups).
fn send_one_stripe<W, D>(
    payload: &[u8],
    plan: &StripePlan,
    transfer: u64,
    tag: i32,
    stripe: u16,
    attempt: u32,
    dial: &D,
) -> io::Result<()>
where
    W: Write,
    D: Fn(u16, u32) -> io::Result<W> + Sync,
{
    let mut w = dial(stripe, attempt)?;
    StripeFrame::Open {
        transfer,
        stripe,
        stripes: plan.stripes(),
        chunk: plan.chunk_bytes(),
        total_len: plan.total_len(),
        tag,
    }
    .write_to(&mut w)?;
    for (seq, offset, len) in plan.iter_stripe(stripe) {
        let start = offset as usize;
        let bytes = payload[start..start + len as usize].to_vec();
        StripeFrame::Data {
            transfer,
            stripe,
            seq,
            offset,
            bytes,
        }
        .write_to(&mut w)?;
    }
    StripeFrame::Fin {
        transfer,
        stripe,
        chunks: plan.chunks_on(stripe),
    }
    .write_to(&mut w)
}

/// Shared receiver for one striped transfer on the real-socket path:
/// each stripe flow gets a [`StripeReceiver::feed`] call (typically
/// one thread per accepted connection), all feeding one reassembler.
#[derive(Clone, Default)]
pub struct StripeReceiver {
    state: Arc<Mutex<RxShared>>,
}

#[derive(Default)]
struct RxShared {
    rx: Option<Reassembler>,
    done: Option<(i32, Vec<u8>)>,
    duplicates: u64,
}

impl StripeReceiver {
    pub fn new() -> StripeReceiver {
        StripeReceiver::default()
    }

    /// Drive one stripe flow until its `Fin` (or EOF). Returns `true`
    /// if this flow's frames completed the whole transfer.
    pub fn feed<R: Read>(&self, mut r: R, stats: Option<&StripeStats>) -> io::Result<bool> {
        let mut completed = false;
        loop {
            let frame = match StripeFrame::read_from(&mut r) {
                Ok(f) => f,
                Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                Err(e) => return Err(e),
            };
            let fin = matches!(frame, StripeFrame::Fin { .. });
            let outcome = self.ingest(&frame).map_err(io::Error::from)?;
            match outcome {
                Accept::Complete => {
                    completed = true;
                    if let Some(s) = stats {
                        s.transfers.inc();
                    }
                }
                Accept::Duplicate => {
                    if let Some(s) = stats {
                        s.dup_chunks.inc();
                    }
                }
                Accept::Fresh => {
                    if let (Some(s), StripeFrame::Data { .. }) = (stats, &frame) {
                        s.chunks_received.inc();
                    }
                }
            }
            if fin {
                break;
            }
        }
        Ok(completed)
    }

    /// Feed one already-decoded frame (the sim path).
    pub fn ingest(&self, frame: &StripeFrame) -> Result<Accept, StripeError> {
        let mut st = self.state.lock();
        if st.rx.is_none() {
            // Geometry must arrive before data on every flow.
            st.rx = Some(Reassembler::open(frame)?);
        }
        let Some(rx) = st.rx.as_mut() else {
            return Err(StripeError::NotOpened);
        };
        let outcome = rx.accept(frame)?;
        match outcome {
            Accept::Complete => {
                let tag = rx.tag();
                let payload = rx.payload()?.to_vec();
                st.done = Some((tag, payload));
            }
            Accept::Duplicate => st.duplicates += 1,
            Accept::Fresh => {}
        }
        Ok(outcome)
    }

    /// The completed `(tag, payload)`, once every offset is covered.
    pub fn result(&self) -> Option<(i32, Vec<u8>)> {
        self.state.lock().done.clone()
    }

    /// Duplicate deliveries absorbed across all flows.
    pub fn duplicates(&self) -> u64 {
        self.state.lock().duplicates
    }

    /// Per-stripe holes, for failover diagnostics.
    pub fn missing_on(&self, stripe: u16) -> Vec<u64> {
        self.state
            .lock()
            .rx
            .as_ref()
            .map(|rx| rx.missing_on(stripe))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    #[test]
    fn plan_arithmetic_covers_every_byte_exactly_once() {
        for (len, stripes, chunk) in [
            (0u64, 1u16, 8u32),
            (1, 1, 8),
            (64, 4, 8),
            (65, 4, 8),
            (63, 4, 8),
            (1000, 3, 7),
            (5, 8, 4),
        ] {
            let plan = StripePlan::new(len, stripes, chunk).unwrap();
            let mut covered = vec![0u32; len as usize];
            let mut chunks_seen = 0u64;
            for s in 0..stripes {
                for (seq, offset, clen) in plan.iter_stripe(s) {
                    let idx = plan.chunk_index(s, seq).unwrap();
                    assert_eq!(plan.stripe_of(idx), s);
                    assert_eq!(plan.seq_of(idx), seq);
                    for b in offset..offset + u64::from(clen) {
                        covered[b as usize] += 1;
                    }
                    chunks_seen += 1;
                }
                assert_eq!(plan.chunks_on(s), plan.iter_stripe(s).count() as u64);
            }
            assert_eq!(chunks_seen, plan.chunk_count());
            assert!(covered.iter().all(|&c| c == 1), "{len}/{stripes}/{chunk}");
        }
    }

    #[test]
    fn plan_rejects_degenerate_geometry() {
        assert!(StripePlan::new(10, 0, 8).is_err());
        assert!(StripePlan::new(10, MAX_STRIPES + 1, 8).is_err());
        assert!(StripePlan::new(10, 1, 0).is_err());
        assert!(StripePlan::new(10, 1, MAX_CHUNK_BYTES + 1).is_err());
        assert!(StripePlan::new(MAX_TRANSFER_BYTES + 1, 1, 1024).is_err());
        // Chunk-count bomb: tiny chunks over a big transfer.
        assert!(StripePlan::new(MAX_TRANSFER_BYTES, 1, 1).is_err());
    }

    #[test]
    fn frames_roundtrip() {
        for f in [
            StripeFrame::Open {
                transfer: 7,
                stripe: 2,
                stripes: 4,
                chunk: 4096,
                total_len: 1 << 20,
                tag: -3,
            },
            StripeFrame::Data {
                transfer: 7,
                stripe: 2,
                seq: 9,
                offset: 1234,
                bytes: payload(100),
            },
            StripeFrame::Data {
                transfer: 0,
                stripe: 0,
                seq: 0,
                offset: 0,
                bytes: vec![],
            },
            StripeFrame::Fin {
                transfer: 7,
                stripe: 2,
                chunks: 32,
            },
            StripeFrame::Done {
                transfer: 7,
                total_len: 1 << 20,
            },
        ] {
            let framed = f.encode().unwrap();
            let len = u32::from_be_bytes(framed[0..4].try_into().unwrap());
            assert_eq!(len as usize, framed.len() - 4);
            assert_eq!(StripeFrame::decode_body(&framed[4..]).unwrap(), f);
            let mut cur = std::io::Cursor::new(framed);
            assert_eq!(StripeFrame::read_from(&mut cur).unwrap(), f);
        }
    }

    #[test]
    fn decode_rejects_garbage_and_oversize() {
        assert!(StripeFrame::decode_body(&[]).is_err());
        assert!(StripeFrame::decode_body(&[99]).is_err());
        let mut f = StripeFrame::Done {
            transfer: 1,
            total_len: 2,
        }
        .encode()
        .unwrap();
        f.push(0);
        assert!(StripeFrame::decode_body(&f[4..]).is_err());
        // Oversize declared length is refused before allocation.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_STRIPE_FRAME + 1).to_be_bytes());
        let mut cur = std::io::Cursor::new(buf);
        assert!(StripeFrame::read_from(&mut cur).is_err());
        // Oversize chunk is refused at encode time.
        let e = StripeFrame::Data {
            transfer: 0,
            stripe: 0,
            seq: 0,
            offset: 0,
            bytes: vec![0; MAX_CHUNK_BYTES as usize + 1],
        }
        .encode()
        .unwrap_err();
        assert!(matches!(e, StripeError::WrongLength { .. }));
    }

    fn data_frame(plan: &StripePlan, pl: &[u8], idx: u64) -> StripeFrame {
        let offset = plan.offset_of(idx);
        let len = plan.len_of(idx);
        StripeFrame::Data {
            transfer: 1,
            stripe: plan.stripe_of(idx),
            seq: plan.seq_of(idx),
            offset,
            bytes: pl[offset as usize..(offset + u64::from(len)) as usize].to_vec(),
        }
    }

    #[test]
    fn reassembles_any_order_with_duplicates() {
        let pl = payload(100);
        let plan = StripePlan::new(100, 4, 8).unwrap();
        let n = plan.chunk_count();
        let mut rx = Reassembler::new(1, 0, plan);
        // Reverse order, each chunk delivered twice.
        for idx in (0..n).rev() {
            let f = data_frame(&plan, &pl, idx);
            let first = rx.accept(&f).unwrap();
            if idx == 0 {
                assert_eq!(first, Accept::Complete);
            } else {
                assert_eq!(first, Accept::Fresh);
            }
            assert_eq!(rx.accept(&f).unwrap(), Accept::Duplicate);
        }
        assert_eq!(rx.duplicates(), n);
        assert_eq!(rx.payload().unwrap(), &pl[..]);
        assert!(rx.missing_on(0).is_empty());
    }

    #[test]
    fn conflicting_duplicate_is_a_typed_error() {
        let pl = payload(64);
        let plan = StripePlan::new(64, 2, 8).unwrap();
        let mut rx = Reassembler::new(1, 0, plan);
        rx.accept(&data_frame(&plan, &pl, 0)).unwrap();
        let mut evil = pl.clone();
        evil[3] ^= 0xFF;
        let err = rx.accept(&data_frame(&plan, &evil, 0)).unwrap_err();
        assert_eq!(err, StripeError::Conflict { offset: 0 });
    }

    #[test]
    fn geometry_violations_are_typed_errors() {
        let pl = payload(64);
        let plan = StripePlan::new(64, 2, 8).unwrap();
        let mut rx = Reassembler::new(1, 5, plan);
        // Wrong transfer id.
        assert_eq!(
            rx.accept(&StripeFrame::Fin {
                transfer: 2,
                stripe: 0,
                chunks: 4
            })
            .unwrap_err(),
            StripeError::WrongTransfer { got: 2, want: 1 }
        );
        // Out-of-range stripe.
        assert!(matches!(
            rx.accept_data(2, 0, 0, &pl[0..8]).unwrap_err(),
            StripeError::StripeOutOfRange { .. }
        ));
        // Seq past the plan.
        assert!(matches!(
            rx.accept_data(0, 99, 0, &pl[0..8]).unwrap_err(),
            StripeError::SeqOutOfRange { .. }
        ));
        // Offset disagreeing with the arithmetic.
        assert!(matches!(
            rx.accept_data(0, 1, 8, &pl[0..8]).unwrap_err(),
            StripeError::WrongOffset { .. }
        ));
        // Wrong chunk length.
        assert!(matches!(
            rx.accept_data(0, 0, 0, &pl[0..7]).unwrap_err(),
            StripeError::WrongLength { .. }
        ));
        // Re-open with different geometry.
        assert_eq!(
            rx.accept(&StripeFrame::Open {
                transfer: 1,
                stripe: 0,
                stripes: 3,
                chunk: 8,
                total_len: 64,
                tag: 5,
            })
            .unwrap_err(),
            StripeError::GeometryMismatch
        );
        // Incomplete payload is refused, typed.
        assert!(matches!(
            rx.payload().unwrap_err(),
            StripeError::Incomplete { .. }
        ));
    }

    #[test]
    fn missing_on_names_the_holes() {
        let pl = payload(64);
        let plan = StripePlan::new(64, 2, 8).unwrap();
        let mut rx = Reassembler::new(1, 0, plan);
        // Deliver stripe 1 fully, stripe 0 only seq 1.
        for (seq, _, _) in plan.iter_stripe(1).collect::<Vec<_>>() {
            let idx = plan.chunk_index(1, seq).unwrap();
            rx.accept(&data_frame(&plan, &pl, idx)).unwrap();
        }
        let idx = plan.chunk_index(0, 1).unwrap();
        rx.accept(&data_frame(&plan, &pl, idx)).unwrap();
        assert!(rx.missing_on(1).is_empty());
        assert_eq!(rx.missing_on(0), vec![0, 2, 3]);
    }

    #[test]
    fn empty_transfer_completes_on_fin() {
        let plan = StripePlan::new(0, 2, 8).unwrap();
        let mut rx = Reassembler::new(9, 0, plan);
        assert!(rx.is_complete());
        assert_eq!(
            rx.accept(&StripeFrame::Fin {
                transfer: 9,
                stripe: 0,
                chunks: 0
            })
            .unwrap(),
            Accept::Complete
        );
        assert_eq!(rx.payload().unwrap(), &[] as &[u8]);
    }

    /// A writer that fails after a byte budget — exercises the
    /// mid-stripe redial path of `send_striped`.
    struct FlakySink {
        out: Arc<Mutex<Vec<Vec<u8>>>>,
        slot: usize,
        budget: Option<usize>,
        written: usize,
    }

    impl Write for FlakySink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if let Some(b) = self.budget {
                if self.written + buf.len() > b {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "flaky"));
                }
            }
            self.written += buf.len();
            self.out.lock()[self.slot].extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn send_striped_feeds_receiver_byte_identically() {
        let pl = payload(10_000);
        let plan = StripePlan::new(pl.len() as u64, 4, 1024).unwrap();
        let sinks: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..8 {
            sinks.lock().push(Vec::new());
        }
        let sinks2 = sinks.clone();
        let report = send_striped(&pl, &plan, 42, 3, 0, None, move |stripe, attempt| {
            assert_eq!(attempt, 0);
            Ok(FlakySink {
                out: sinks2.clone(),
                slot: usize::from(stripe),
                budget: None,
                written: 0,
            })
        })
        .unwrap();
        assert_eq!(report.bytes, pl.len() as u64);
        assert_eq!(report.redials, 0);
        // Feed the captured streams back in reverse stripe order.
        let rx = StripeReceiver::new();
        let streams = sinks.lock().clone();
        for s in (0..4).rev() {
            rx.feed(std::io::Cursor::new(streams[s].clone()), None)
                .unwrap();
        }
        let (tag, got) = rx.result().unwrap();
        assert_eq!(tag, 3);
        assert_eq!(got, pl);
        assert_eq!(rx.duplicates(), 0);
    }

    #[test]
    fn send_striped_redials_and_receiver_absorbs_duplicates() {
        let pl = payload(6_000);
        let plan = StripePlan::new(pl.len() as u64, 2, 512).unwrap();
        // Stripe 1's first attempt dies mid-stream; the retry succeeds.
        let sinks: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(vec![Vec::new(); 4]));
        let sinks2 = sinks.clone();
        let report = send_striped(&pl, &plan, 7, 0, 2, None, move |stripe, attempt| {
            let slot = usize::from(stripe) * 2 + attempt as usize;
            Ok(FlakySink {
                out: sinks2.clone(),
                slot,
                budget: (stripe == 1 && attempt == 0).then_some(900),
                written: 0,
            })
        })
        .unwrap();
        assert_eq!(report.redials, 1);
        let rx = StripeReceiver::new();
        let streams = sinks.lock().clone();
        // Feed every stream, including the truncated first attempt —
        // its chunks arrive twice and must be absorbed, not doubled.
        for s in streams {
            rx.feed(std::io::Cursor::new(s), None).unwrap();
        }
        let (_, got) = rx.result().unwrap();
        assert_eq!(got, pl);
        assert!(rx.duplicates() >= 1);
    }

    #[test]
    fn feed_ignores_clean_eof_mid_transfer() {
        // A flow that dies before Fin: feed returns Ok(false), the
        // reassembler keeps its partial coverage.
        let pl = payload(64);
        let plan = StripePlan::new(64, 2, 8).unwrap();
        let mut buf = Vec::new();
        StripeFrame::Open {
            transfer: 1,
            stripe: 0,
            stripes: 2,
            chunk: 8,
            total_len: 64,
            tag: 0,
        }
        .write_to(&mut buf)
        .unwrap();
        StripeFrame::Data {
            transfer: 1,
            stripe: 0,
            seq: 0,
            offset: 0,
            bytes: pl[0..8].to_vec(),
        }
        .write_to(&mut buf)
        .unwrap();
        let rx = StripeReceiver::new();
        assert!(!rx.feed(std::io::Cursor::new(buf), None).unwrap());
        assert_eq!(rx.missing_on(0), vec![1, 2, 3]);
        assert_eq!(plan.chunks_on(0), 4);
    }
}
