//! The client library of Table 1: `NXProxyConnect`, `NXProxyBind`,
//! `NXProxyAccept` — drop-in replacements for `connect(2)`, `bind(2)`
//! and `accept(2)` that route through the Nexus Proxy when one is
//! configured, and fall back to plain (guarded) sockets otherwise —
//! exactly the behaviour the paper describes for the patched Globus:
//! "a communication utilizes the Nexus Proxy system when environment
//! variables `NEXUS_PROXY_OUTER_SERVER` and `NEXUS_PROXY_INNER_SERVER`
//! are defined; otherwise, the original communication is done."

use crate::hook::{interpose, DialHook, DialLeg};
use crate::liveness::{BreakerConfig, SharedBreaker};
use crate::protocol::Msg;
use crate::shard::{bind_key, member_tag, ShardMap, ShardRouter, ShardStats};
use firewall::vnet::{VListener, VNet};
use std::fmt;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use wacs_obs::Registry;
use wacs_sync::OrderedMutex;

/// Proxy configuration for a client process — the stand-in for the two
/// environment variables.
#[derive(Debug, Clone, Default)]
pub struct ProxyEnv {
    /// `NEXUS_PROXY_OUTER_SERVER`: logical `(host, ctrl_port)`.
    pub outer: Option<(String, u16)>,
    /// Optional WAN-leg circuit breaker guarding dials *to* the outer
    /// server: when open, proxied calls fail fast locally instead of
    /// hammering a dead DMZ host.
    pub breaker: Option<SharedBreaker>,
    /// Sharded outer fleet (DESIGN.md §6d). When set, bind and connect
    /// pick a shard by rendezvous hashing and fail over down the
    /// preference ladder; `outer`/`breaker` are ignored (each shard
    /// has its own breaker inside the router).
    pub fleet: Option<Arc<FleetRouter>>,
    /// Optional socket-level interposer (DESIGN.md §6f). `None` — the
    /// default — leaves every dial untouched.
    pub dial_hook: Option<DialHook>,
}

impl ProxyEnv {
    pub fn direct() -> Self {
        ProxyEnv::default()
    }

    pub fn via(outer_host: impl Into<String>, ctrl_port: u16) -> Self {
        ProxyEnv {
            outer: Some((outer_host.into(), ctrl_port)),
            breaker: None,
            fleet: None,
            dial_hook: None,
        }
    }

    /// Route through a sharded outer fleet instead of a single outer
    /// server. Share one [`FleetRouter`] per process so breaker state
    /// accumulates across calls.
    pub fn via_fleet(fleet: Arc<FleetRouter>) -> Self {
        ProxyEnv {
            outer: None,
            breaker: None,
            fleet: Some(fleet),
            dial_hook: None,
        }
    }

    /// Share a circuit breaker across this client's outer-server dials
    /// (typically the one handed out by `OuterServer::breaker`, or a
    /// fresh [`SharedBreaker`] per site).
    #[must_use]
    pub fn with_breaker(mut self, b: SharedBreaker) -> Self {
        self.breaker = Some(b);
        self
    }

    /// Install a socket-level interposer on every dial this env makes
    /// (chaos testing; see `wacs-chaos`). Production code never sets
    /// this, so the hookless path is unchanged.
    #[must_use]
    pub fn with_dial_hook(mut self, hook: DialHook) -> Self {
        self.dial_hook = Some(hook);
        self
    }

    pub fn enabled(&self) -> bool {
        self.outer.is_some() || self.fleet.is_some()
    }
}

/// Client-side view of the outer fleet: the shared [`ShardMap`] plus a
/// circuit breaker per shard ([`ShardRouter`]), usable from many
/// client threads at once.
pub struct FleetRouter {
    /// Members (control endpoints, fleet order) and the router over
    /// them — kept together under one lock so the address book can
    /// never drift from the map it indexes.
    state: OrderedMutex<FleetRouterState>,
    registry: Registry,
    stats: ShardStats,
    t0: Instant,
}

struct FleetRouterState {
    members: Vec<(String, u16)>,
    router: ShardRouter,
}

impl fmt::Debug for FleetRouter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.state.lock();
        f.debug_struct("FleetRouter")
            .field("members", &st.members)
            .field("generation", &st.router.map().generation())
            .finish()
    }
}

/// Derive the fleet-wide [`ShardMap`] from a member list: tags are the
/// stable hashes of each control endpoint, so every party that holds
/// the same list computes the same ownership.
fn map_of(generation: u64, members: &[(String, u16)]) -> ShardMap {
    let tags = members
        .iter()
        .map(|(h, p)| member_tag(&bind_key(h, *p)))
        .collect();
    ShardMap::new(generation, tags)
}

impl FleetRouter {
    /// Build a router over `members` (generation 1) with per-shard
    /// breakers configured by `cfg`.
    pub fn new(members: Vec<(String, u16)>, cfg: BreakerConfig) -> Arc<FleetRouter> {
        let registry = Registry::new();
        let stats = ShardStats::in_registry(&registry);
        stats.map_generation.set(1);
        let router = ShardRouter::new(map_of(1, &members), cfg);
        Arc::new(FleetRouter {
            state: OrderedMutex::new("nexus.client.fleet", FleetRouterState { members, router }),
            registry,
            stats,
            t0: Instant::now(),
        })
    }

    fn now(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Install a strictly newer membership (e.g. relayed from a
    /// `ShardSync`). Breakers of unchanged shards keep their state.
    pub fn install(&self, generation: u64, members: Vec<(String, u16)>) -> bool {
        let mut st = self.state.lock();
        let map = map_of(generation, &members);
        if !st.router.install(map.generation(), map.tags().to_vec()) {
            return false;
        }
        st.members = members;
        self.stats.map_generation.set(generation as i64);
        true
    }

    pub fn generation(&self) -> u64 {
        self.state.lock().router.map().generation()
    }

    pub fn len(&self) -> usize {
        self.state.lock().members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Best available shard for `key`: the highest-preference ladder
    /// entry whose breaker admits a dial. `None` when every shard's
    /// breaker is open.
    fn route(&self, key: &[u8]) -> Option<(usize, (String, u16))> {
        let now = self.now();
        let mut st = self.state.lock();
        let idx = st.router.route(key, now)?;
        let addr = st.members.get(idx)?.clone();
        Some((idx, addr))
    }

    fn index_of(&self, host: &str, port: u16) -> Option<usize> {
        let st = self.state.lock();
        st.members.iter().position(|(h, p)| h == host && *p == port)
    }

    /// HRW owner of `key` under the current map (breakers ignored).
    fn owner(&self, key: &[u8]) -> Option<usize> {
        self.state.lock().router.map().owner(key)
    }

    fn on_success(&self, idx: usize) {
        self.state.lock().router.on_success(idx);
    }

    fn on_failure(&self, idx: usize) {
        let now = self.now();
        self.state.lock().router.on_failure(idx, now);
    }

    /// Does `host` name one of the fleet members? (Rendezvous
    /// addresses live on member hosts and are dialed directly.)
    fn has_member_host(&self, host: &str) -> bool {
        self.state.lock().members.iter().any(|(h, _)| h == host)
    }

    /// Snapshot of the `wacs.shard.*` client counters.
    pub fn obs_snapshot(&self) -> wacs_obs::RegistrySnapshot {
        self.registry.snapshot()
    }
}

/// Dial the outer server, routed through the env's breaker when one is
/// configured: an open breaker refuses locally; the dial outcome feeds
/// the failure/success run.
fn dial_outer(
    net: &VNet,
    env: &ProxyEnv,
    from_host: &str,
    outer_host: &str,
    port: u16,
) -> io::Result<TcpStream> {
    if let Some(b) = &env.breaker {
        if !b.allow() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "circuit breaker open: outer server dials suspended",
            ));
        }
    }
    let dialed = interpose(
        env.dial_hook.as_ref(),
        DialLeg::ClientCtrl,
        from_host,
        outer_host,
        port,
        net.dial(from_host, outer_host, port),
    );
    if let Some(b) = &env.breaker {
        match &dialed {
            Ok(_) => b.on_success(),
            Err(_) => b.on_failure(),
        }
    }
    dialed
}

/// `NXProxyConnect`: "sends a connect request to the outer server and
/// returns a file descriptor on which the client can communicate with
/// the destination process."
///
/// When the destination address already *names the outer server* (a
/// rendezvous address produced by [`nx_proxy_bind`] on the remote
/// side), we connect straight to it — the rendezvous port is reachable
/// by construction, and wrapping it in another `ConnectReq` would pump
/// the bytes through the outer server twice.
pub fn nx_proxy_connect(
    net: &VNet,
    env: &ProxyEnv,
    from_host: &str,
    dst: (&str, u16),
) -> io::Result<TcpStream> {
    let hook = env.dial_hook.as_ref();
    if let Some(fleet) = &env.fleet {
        return connect_via_fleet(net, fleet, from_host, dst, hook);
    }
    let Some((outer_host, ctrl_port)) = &env.outer else {
        return interpose(
            hook,
            DialLeg::ClientData,
            from_host,
            dst.0,
            dst.1,
            net.dial(from_host, dst.0, dst.1),
        );
    };
    if dst.0 == outer_host {
        return interpose(
            hook,
            DialLeg::ClientData,
            from_host,
            dst.0,
            dst.1,
            net.dial(from_host, dst.0, dst.1),
        );
    }
    let mut stream = dial_outer(net, env, from_host, outer_host, *ctrl_port)?;
    Msg::ConnectReq {
        host: dst.0.to_string(),
        port: dst.1,
    }
    .write_to(&mut stream)?;
    match Msg::read_from(&mut stream)? {
        Msg::ConnectRep { ok: true, .. } => Ok(stream),
        Msg::ConnectRep { ok: false, detail } => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("outer server could not reach {}:{}: {detail}", dst.0, dst.1),
        )),
        // Typed admission-control refusal: the server is up but full;
        // `WouldBlock` tells callers a retry later may succeed.
        Msg::Busy => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "outer server busy (admission control)",
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to ConnectReq",
        )),
    }
}

/// The result of `NXProxyBind`: a listening endpoint plus the address
/// remote peers must use to reach it.
pub struct NxListener {
    /// Where peers should connect: the rendezvous address on the outer
    /// server (proxied) or the private address itself (direct).
    pub advertised: (String, u16),
    private: VListener,
    /// Keeps the rendezvous registration alive; closing it withdraws
    /// the rendezvous port on the outer server.
    _ctrl: Option<TcpStream>,
}

impl NxListener {
    /// Wrap an already-bound listener without any proxy registration:
    /// the advertised address is the private address itself. Used for
    /// direct and port-range (Globus 1.1) modes.
    pub fn direct(private: VListener) -> NxListener {
        let advertised = private.logical_addr();
        NxListener {
            advertised,
            private,
            _ctrl: None,
        }
    }

    /// `NXProxyAccept`: "tries to accept a connection request" on the
    /// endpoint returned by `NXProxyBind`. Relayed peers arrive here
    /// via the inner server.
    pub fn accept(&self) -> io::Result<TcpStream> {
        self.private.accept().map(|(s, _)| s)
    }

    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.private.set_nonblocking(nb)
    }

    /// The private (intra-site) address the inner server dials.
    pub fn private_addr(&self) -> (String, u16) {
        self.private.logical_addr()
    }
}

/// `NXProxyBind`: "sends a bind request to the outer server and returns
/// a file descriptor on which the client can listen for requests."
pub fn nx_proxy_bind(net: &VNet, env: &ProxyEnv, host: &str) -> io::Result<NxListener> {
    let private = net.bind(host, 0)?;
    if let Some(fleet) = &env.fleet {
        return bind_via_fleet(net, fleet, host, private, env.dial_hook.as_ref());
    }
    let Some((outer_host, ctrl_port)) = &env.outer else {
        let advertised = private.logical_addr();
        return Ok(NxListener {
            advertised,
            private,
            _ctrl: None,
        });
    };
    let mut ctrl = dial_outer(net, env, host, outer_host, *ctrl_port)?;
    Msg::BindReq {
        host: host.to_string(),
        port: private.logical_port(),
        fallback: false,
    }
    .write_to(&mut ctrl)?;
    match Msg::read_from(&mut ctrl)? {
        Msg::BindRep { rdv_port } if rdv_port != 0 => Ok(NxListener {
            advertised: (outer_host.clone(), rdv_port),
            private,
            _ctrl: Some(ctrl),
        }),
        Msg::BindRep { .. } => Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "outer server could not allocate a rendezvous port",
        )),
        Msg::Busy => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "outer server busy (admission control)",
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to BindReq",
        )),
    }
}

fn all_shards_down() -> io::Error {
    io::Error::new(
        io::ErrorKind::ConnectionRefused,
        "all fleet shards unavailable (breakers open)",
    )
}

/// Fleet `NXProxyBind`: walk the bind key's preference ladder —
/// breakers skip shards known dead, a dial or session failure feeds
/// the shard's breaker and descends to the next rung, and a `Redirect`
/// re-aims at the owner the serving shard named. Attempts are bounded
/// by twice the fleet size, so a stale map cannot loop forever.
fn bind_via_fleet(
    net: &VNet,
    fleet: &FleetRouter,
    host: &str,
    private: VListener,
    hook: Option<&DialHook>,
) -> io::Result<NxListener> {
    let key = bind_key(host, private.logical_port());
    let mut target = fleet.route(&key).ok_or_else(all_shards_down)?;
    // A request knowingly aimed at a non-owner (the owner's breaker is
    // open or its dials fail) carries `fallback: true`, telling the
    // shard to serve instead of redirecting us back to a dead owner.
    // Redirect-follows send `false`: the redirecting shard named a
    // live owner from a map at least as fresh as ours.
    let mut fallback = fleet.owner(&key) != Some(target.0);
    for _ in 0..(2 * fleet.len().max(1)) {
        let (idx, (shard_host, ctrl_port)) = target;
        let req = Msg::BindReq {
            host: host.to_string(),
            port: private.logical_port(),
            fallback,
        };
        let dialed = interpose(
            hook,
            DialLeg::ClientCtrl,
            host,
            &shard_host,
            ctrl_port,
            net.dial(host, &shard_host, ctrl_port),
        );
        let mut ctrl = match dialed {
            Ok(s) => {
                fleet.on_success(idx);
                s
            }
            Err(_) => {
                fleet.on_failure(idx);
                fleet.stats.failovers.inc();
                target = fleet.route(&key).ok_or_else(all_shards_down)?;
                fallback = fleet.owner(&key) != Some(target.0);
                continue;
            }
        };
        let reply = req
            .write_to(&mut ctrl)
            .and_then(|_| Msg::read_from(&mut ctrl));
        match reply {
            Ok(Msg::BindRep { rdv_port }) if rdv_port != 0 => {
                return Ok(NxListener {
                    advertised: (shard_host, rdv_port),
                    private,
                    _ctrl: Some(ctrl),
                });
            }
            Ok(Msg::Redirect { host: oh, port: op }) => {
                fleet.stats.redirects_followed.inc();
                // The owner the serving shard named may not be in our
                // (possibly stale) member list; follow the address
                // regardless, falling back to the serving shard's
                // index for breaker accounting.
                let oidx = fleet.index_of(&oh, op).unwrap_or(idx);
                target = (oidx, (oh, op));
                fallback = false;
            }
            Ok(Msg::BindRep { .. }) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrNotAvailable,
                    "outer shard could not allocate a rendezvous port",
                ));
            }
            Ok(Msg::Busy) => {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "outer shard busy (admission control)",
                ));
            }
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected reply to BindReq",
                ));
            }
            // The session died under us: the shard failed after the
            // dial succeeded. Charge its breaker and descend.
            Err(_) => {
                fleet.on_failure(idx);
                fleet.stats.failovers.inc();
                target = fleet.route(&key).ok_or_else(all_shards_down)?;
                fallback = fleet.owner(&key) != Some(target.0);
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        "fleet bind gave up: redirect/failover budget exhausted",
    ))
}

/// Fleet `NXProxyConnect`: rendezvous addresses (on a member host) are
/// dialed directly, exactly like the single-outer fast path; anything
/// else is proxied via the bind key's ladder with the same
/// breaker-driven failover as [`bind_via_fleet`]. Any shard can serve
/// a `ConnectReq` (active opens have no owner), so a typed refusal is
/// final but a dead shard just means the next rung.
fn connect_via_fleet(
    net: &VNet,
    fleet: &FleetRouter,
    from_host: &str,
    dst: (&str, u16),
    hook: Option<&DialHook>,
) -> io::Result<TcpStream> {
    if fleet.has_member_host(dst.0) {
        return interpose(
            hook,
            DialLeg::ClientData,
            from_host,
            dst.0,
            dst.1,
            net.dial(from_host, dst.0, dst.1),
        );
    }
    let key = bind_key(dst.0, dst.1);
    let req = Msg::ConnectReq {
        host: dst.0.to_string(),
        port: dst.1,
    };
    let mut target = fleet.route(&key).ok_or_else(all_shards_down)?;
    for _ in 0..fleet.len().max(1) {
        let (idx, (shard_host, ctrl_port)) = target;
        let dialed = interpose(
            hook,
            DialLeg::ClientCtrl,
            from_host,
            &shard_host,
            ctrl_port,
            net.dial(from_host, &shard_host, ctrl_port),
        );
        let mut stream = match dialed {
            Ok(s) => {
                fleet.on_success(idx);
                s
            }
            Err(_) => {
                fleet.on_failure(idx);
                fleet.stats.failovers.inc();
                target = fleet.route(&key).ok_or_else(all_shards_down)?;
                continue;
            }
        };
        let reply = req
            .write_to(&mut stream)
            .and_then(|_| Msg::read_from(&mut stream));
        match reply {
            Ok(Msg::ConnectRep { ok: true, .. }) => return Ok(stream),
            Ok(Msg::ConnectRep { ok: false, detail }) => {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    format!("outer shard could not reach {}:{}: {detail}", dst.0, dst.1),
                ));
            }
            Ok(Msg::Busy) => {
                return Err(io::Error::new(
                    io::ErrorKind::WouldBlock,
                    "outer shard busy (admission control)",
                ));
            }
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "unexpected reply to ConnectReq",
                ));
            }
            Err(_) => {
                fleet.on_failure(idx);
                fleet.stats.failovers.inc();
                target = fleet.route(&key).ok_or_else(all_shards_down)?;
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::TimedOut,
        "fleet connect gave up: failover budget exhausted",
    ))
}
