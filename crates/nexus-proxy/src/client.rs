//! The client library of Table 1: `NXProxyConnect`, `NXProxyBind`,
//! `NXProxyAccept` — drop-in replacements for `connect(2)`, `bind(2)`
//! and `accept(2)` that route through the Nexus Proxy when one is
//! configured, and fall back to plain (guarded) sockets otherwise —
//! exactly the behaviour the paper describes for the patched Globus:
//! "a communication utilizes the Nexus Proxy system when environment
//! variables `NEXUS_PROXY_OUTER_SERVER` and `NEXUS_PROXY_INNER_SERVER`
//! are defined; otherwise, the original communication is done."

use crate::liveness::SharedBreaker;
use crate::protocol::Msg;
use firewall::vnet::{VListener, VNet};
use std::io;
use std::net::TcpStream;

/// Proxy configuration for a client process — the stand-in for the two
/// environment variables.
#[derive(Debug, Clone, Default)]
pub struct ProxyEnv {
    /// `NEXUS_PROXY_OUTER_SERVER`: logical `(host, ctrl_port)`.
    pub outer: Option<(String, u16)>,
    /// Optional WAN-leg circuit breaker guarding dials *to* the outer
    /// server: when open, proxied calls fail fast locally instead of
    /// hammering a dead DMZ host.
    pub breaker: Option<SharedBreaker>,
}

impl ProxyEnv {
    pub fn direct() -> Self {
        ProxyEnv::default()
    }

    pub fn via(outer_host: impl Into<String>, ctrl_port: u16) -> Self {
        ProxyEnv {
            outer: Some((outer_host.into(), ctrl_port)),
            breaker: None,
        }
    }

    /// Share a circuit breaker across this client's outer-server dials
    /// (typically the one handed out by `OuterServer::breaker`, or a
    /// fresh [`SharedBreaker`] per site).
    #[must_use]
    pub fn with_breaker(mut self, b: SharedBreaker) -> Self {
        self.breaker = Some(b);
        self
    }

    pub fn enabled(&self) -> bool {
        self.outer.is_some()
    }
}

/// Dial the outer server, routed through the env's breaker when one is
/// configured: an open breaker refuses locally; the dial outcome feeds
/// the failure/success run.
fn dial_outer(
    net: &VNet,
    env: &ProxyEnv,
    from_host: &str,
    outer_host: &str,
    port: u16,
) -> io::Result<TcpStream> {
    if let Some(b) = &env.breaker {
        if !b.allow() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "circuit breaker open: outer server dials suspended",
            ));
        }
    }
    let dialed = net.dial(from_host, outer_host, port);
    if let Some(b) = &env.breaker {
        match &dialed {
            Ok(_) => b.on_success(),
            Err(_) => b.on_failure(),
        }
    }
    dialed
}

/// `NXProxyConnect`: "sends a connect request to the outer server and
/// returns a file descriptor on which the client can communicate with
/// the destination process."
///
/// When the destination address already *names the outer server* (a
/// rendezvous address produced by [`nx_proxy_bind`] on the remote
/// side), we connect straight to it — the rendezvous port is reachable
/// by construction, and wrapping it in another `ConnectReq` would pump
/// the bytes through the outer server twice.
pub fn nx_proxy_connect(
    net: &VNet,
    env: &ProxyEnv,
    from_host: &str,
    dst: (&str, u16),
) -> io::Result<TcpStream> {
    let Some((outer_host, ctrl_port)) = &env.outer else {
        return net.dial(from_host, dst.0, dst.1);
    };
    if dst.0 == outer_host {
        return net.dial(from_host, dst.0, dst.1);
    }
    let mut stream = dial_outer(net, env, from_host, outer_host, *ctrl_port)?;
    Msg::ConnectReq {
        host: dst.0.to_string(),
        port: dst.1,
    }
    .write_to(&mut stream)?;
    match Msg::read_from(&mut stream)? {
        Msg::ConnectRep { ok: true, .. } => Ok(stream),
        Msg::ConnectRep { ok: false, detail } => Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("outer server could not reach {}:{}: {detail}", dst.0, dst.1),
        )),
        // Typed admission-control refusal: the server is up but full;
        // `WouldBlock` tells callers a retry later may succeed.
        Msg::Busy => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "outer server busy (admission control)",
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to ConnectReq",
        )),
    }
}

/// The result of `NXProxyBind`: a listening endpoint plus the address
/// remote peers must use to reach it.
pub struct NxListener {
    /// Where peers should connect: the rendezvous address on the outer
    /// server (proxied) or the private address itself (direct).
    pub advertised: (String, u16),
    private: VListener,
    /// Keeps the rendezvous registration alive; closing it withdraws
    /// the rendezvous port on the outer server.
    _ctrl: Option<TcpStream>,
}

impl NxListener {
    /// Wrap an already-bound listener without any proxy registration:
    /// the advertised address is the private address itself. Used for
    /// direct and port-range (Globus 1.1) modes.
    pub fn direct(private: VListener) -> NxListener {
        let advertised = private.logical_addr();
        NxListener {
            advertised,
            private,
            _ctrl: None,
        }
    }

    /// `NXProxyAccept`: "tries to accept a connection request" on the
    /// endpoint returned by `NXProxyBind`. Relayed peers arrive here
    /// via the inner server.
    pub fn accept(&self) -> io::Result<TcpStream> {
        self.private.accept().map(|(s, _)| s)
    }

    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        self.private.set_nonblocking(nb)
    }

    /// The private (intra-site) address the inner server dials.
    pub fn private_addr(&self) -> (String, u16) {
        self.private.logical_addr()
    }
}

/// `NXProxyBind`: "sends a bind request to the outer server and returns
/// a file descriptor on which the client can listen for requests."
pub fn nx_proxy_bind(net: &VNet, env: &ProxyEnv, host: &str) -> io::Result<NxListener> {
    let private = net.bind(host, 0)?;
    let Some((outer_host, ctrl_port)) = &env.outer else {
        let advertised = private.logical_addr();
        return Ok(NxListener {
            advertised,
            private,
            _ctrl: None,
        });
    };
    let mut ctrl = dial_outer(net, env, host, outer_host, *ctrl_port)?;
    Msg::BindReq {
        host: host.to_string(),
        port: private.logical_port(),
    }
    .write_to(&mut ctrl)?;
    match Msg::read_from(&mut ctrl)? {
        Msg::BindRep { rdv_port } if rdv_port != 0 => Ok(NxListener {
            advertised: (outer_host.clone(), rdv_port),
            private,
            _ctrl: Some(ctrl),
        }),
        Msg::BindRep { .. } => Err(io::Error::new(
            io::ErrorKind::AddrNotAvailable,
            "outer server could not allocate a rendezvous port",
        )),
        Msg::Busy => Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            "outer server busy (admission control)",
        )),
        _ => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected reply to BindReq",
        )),
    }
}
