//! Sharded outer-server fleet: rendezvous hashing of bind keys onto a
//! set of outer instances, plus the breaker-driven failover router.
//!
//! The paper deploys exactly one outer proxy — its single point of
//! failure and its scalability wall. This module spreads rendezvous
//! state over N outer servers with **highest-random-weight (HRW)
//! hashing**: every `(member, key)` pair gets a pseudo-random 64-bit
//! weight, and the member with the highest weight *owns* the key. Two
//! properties make HRW the right fit here:
//!
//! * **No coordination.** Clients, inner servers, and every outer
//!   shard compute ownership locally from the shared [`ShardMap`];
//!   there is no directory service to keep consistent.
//! * **A built-in failover ladder.** Sorting members by descending
//!   weight for a key yields a per-key permutation ([`ShardMap::ladder`]);
//!   when the owner is unreachable the next rung is exactly the member
//!   that *would* own the key if the owner left the map. Failing over
//!   down the ladder therefore agrees with a recomputed ownership —
//!   no rehash storms, no split ownership.
//!
//! Liveness is judged by the PR 5 [`CircuitBreaker`]: the
//! [`ShardRouter`] pairs the map with one breaker per shard and walks
//! the ladder skipping shards whose breaker refuses. Like the rest of
//! `liveness.rs`, everything here is pure (callers pass `now`), so
//! `wacs-check` can drive the exact production code through every
//! bounded interleaving (see `wacs-check/src/shard.rs`).
//!
//! Maps are **generation-counted**: [`ShardMap::install`] only accepts
//! strictly newer generations, mirroring the BindSync discipline, so a
//! replaced shard that re-announces an old map cannot roll anyone back.

use crate::liveness::{BreakerConfig, BreakerState, CircuitBreaker};
use wacs_obs::{Counter, Gauge, Registry};

/// `splitmix64` finalizer: a cheap, well-distributed 64-bit mixer.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over `bytes`, then mixed — the stable key/identity hash.
/// (std's `DefaultHasher` is randomly seeded per process; ownership
/// must agree across *processes*, so we hash explicitly.)
fn stable_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    mix64(h)
}

/// Stable identity tag for a fleet member (hash its address bytes).
pub fn member_tag(bytes: &[u8]) -> u64 {
    stable_hash(bytes)
}

/// The canonical bind key: the client's private `host:port` endpoint.
/// Both sides of every lookup (client bind, outer redirect, inner
/// authorization) must derive the key the same way.
pub fn bind_key(host: &str, port: u16) -> Vec<u8> {
    let mut k = Vec::with_capacity(host.len() + 6);
    k.extend_from_slice(host.as_bytes());
    k.push(b':');
    k.extend_from_slice(&port.to_be_bytes());
    k
}

/// Routing verdict for one shard receiving a request for `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRoute {
    /// This shard owns the key: serve it.
    Own,
    /// Another shard owns the key: answer with a redirect to it.
    Redirect(usize),
}

/// Generation-counted membership map: who is in the fleet, and which
/// member owns which key. Members are identified by stable 64-bit
/// tags ([`member_tag`]); address books live with the callers (real
/// path: `(host, ctrl_port)`, sim: `(NodeId, port)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    generation: u64,
    tags: Vec<u64>,
}

impl ShardMap {
    pub fn new(generation: u64, tags: Vec<u64>) -> Self {
        ShardMap { generation, tags }
    }

    /// A single-member map: the degenerate (paper) deployment.
    pub fn solo(tag: u64) -> Self {
        ShardMap::new(0, vec![tag])
    }

    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn len(&self) -> usize {
        self.tags.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    pub fn tags(&self) -> &[u64] {
        &self.tags
    }

    /// HRW weight of member `i` for `key_hash` (pre-hashed key).
    fn weight(&self, i: usize, key_hash: u64) -> u64 {
        mix64(self.tags[i].wrapping_add(key_hash).rotate_left(17) ^ self.tags[i])
    }

    /// The member owning `key`: highest weight, ties to the lowest
    /// index (total as long as the map is non-empty).
    pub fn owner(&self, key: &[u8]) -> Option<usize> {
        self.owner_among(key, |_| true)
    }

    /// The owner of `key` restricted to members where `live(i)` —
    /// i.e. ownership as it *would* be if the dead members left the
    /// map. Failover down [`ShardMap::ladder`] lands on exactly this
    /// member (the invariant `wacs-check` exhausts).
    pub fn owner_among(&self, key: &[u8], live: impl Fn(usize) -> bool) -> Option<usize> {
        let kh = stable_hash(key);
        let mut best: Option<(u64, usize)> = None;
        for i in 0..self.tags.len() {
            if !live(i) {
                continue;
            }
            let w = self.weight(i, kh);
            let better = match best {
                None => true,
                Some((bw, _)) => w > bw,
            };
            if better {
                best = Some((w, i));
            }
        }
        best.map(|(_, i)| i)
    }

    /// Every member ordered by descending weight for `key` (ties to
    /// the lowest index): the failover ladder. `ladder(key)[0]` is the
    /// owner; a permutation of `0..len`.
    pub fn ladder(&self, key: &[u8]) -> Vec<usize> {
        let kh = stable_hash(key);
        let mut order: Vec<usize> = (0..self.tags.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(self.weight(i, kh)), i));
        order
    }

    /// How shard `self_idx` must answer a request for `key`: serve it
    /// or redirect to the owner. `None` when the map is empty or
    /// `self_idx` is not a member (a misconfigured shard must refuse,
    /// not guess).
    pub fn route(&self, self_idx: usize, key: &[u8]) -> Option<ShardRoute> {
        if self_idx >= self.tags.len() {
            return None;
        }
        let owner = self.owner(key)?;
        Some(if owner == self_idx {
            ShardRoute::Own
        } else {
            ShardRoute::Redirect(owner)
        })
    }

    /// Install a newer map. Generations are strictly monotone — a
    /// stale or equal generation is ignored (`false`), the BindSync
    /// discipline applied to membership.
    pub fn install(&mut self, generation: u64, tags: Vec<u64>) -> bool {
        if generation <= self.generation {
            return false;
        }
        self.generation = generation;
        self.tags = tags;
        true
    }
}

/// Client-side shard selection: the [`ShardMap`] plus one
/// [`CircuitBreaker`] per member. Pure — callers pass `now` in
/// nanoseconds (wall clock on the real path, virtual time in the sim),
/// so the machine is deterministic and exhaustively checkable.
#[derive(Debug)]
pub struct ShardRouter {
    map: ShardMap,
    cfg: BreakerConfig,
    breakers: Vec<CircuitBreaker>,
}

impl ShardRouter {
    pub fn new(map: ShardMap, cfg: BreakerConfig) -> Self {
        let breakers = (0..map.len()).map(|_| CircuitBreaker::new(cfg)).collect();
        ShardRouter { map, cfg, breakers }
    }

    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// First rung of `key`'s ladder whose breaker admits a dial at
    /// `now`. `None` means every shard is breaker-open: fail fast and
    /// let the caller's retry policy pace the next attempt.
    pub fn route(&mut self, key: &[u8], now: u64) -> Option<usize> {
        let ladder = self.map.ladder(key);
        ladder.into_iter().find(|&i| self.breakers[i].allow(now))
    }

    /// Like [`ShardRouter::route`], but head the ladder at `start %
    /// len` and walk the members after it in ring order instead of by
    /// HRW weight. A striped bulk transfer pins lane *i* to shard `i %
    /// len` this way, so K lanes spread over K shards by construction
    /// (GridFTP-style parallel streams) rather than by hash luck,
    /// while breakers still skip members known dead. `None` when the
    /// map is empty or every breaker is open.
    pub fn route_from(&mut self, start: usize, now: u64) -> Option<usize> {
        let n = self.map.len();
        if n == 0 {
            return None;
        }
        (0..n)
            .map(|o| (start + o) % n)
            .find(|&i| self.breakers[i].allow(now))
    }

    pub fn on_success(&mut self, idx: usize) {
        if let Some(b) = self.breakers.get_mut(idx) {
            b.on_success();
        }
    }

    pub fn on_failure(&mut self, idx: usize, now: u64) {
        if let Some(b) = self.breakers.get_mut(idx) {
            b.on_failure(now);
        }
    }

    pub fn breaker_state(&self, idx: usize) -> Option<BreakerState> {
        self.breakers.get(idx).map(CircuitBreaker::state)
    }

    /// Install a newer map (see [`ShardMap::install`]). Members whose
    /// tag changed are *replacements*: their breaker history belongs
    /// to the old instance and is reset; surviving members keep
    /// theirs. `false` = stale generation, nothing changes.
    pub fn install(&mut self, generation: u64, tags: Vec<u64>) -> bool {
        let old = self.map.tags().to_vec();
        if !self.map.install(generation, tags) {
            return false;
        }
        let mut breakers = Vec::with_capacity(self.map.len());
        for (i, &tag) in self.map.tags().iter().enumerate() {
            if old.get(i) == Some(&tag) {
                breakers.push(self.breakers[i].clone());
            } else {
                breakers.push(CircuitBreaker::new(self.cfg));
            }
        }
        self.breakers = breakers;
        true
    }
}

/// Fleet counters, shared by whichever roles participate (outer
/// shards count redirects sent, clients count redirects followed and
/// failovers, inner servers count map syncs applied).
pub struct ShardStats {
    /// BindReqs answered with a `Redirect` frame (outer, not owner).
    pub redirects_sent: Counter,
    /// `Redirect` frames obeyed by a client (re-dial to the owner).
    pub redirects_followed: Counter,
    /// Ladder descents past an unavailable shard (dial failure or
    /// breaker-open skip) on the client side.
    pub failovers: Counter,
    /// Generation-counted `ShardSync` frames: applied on the inner
    /// server (stale ones are dropped and *not* counted), sent on an
    /// outer shard.
    pub map_syncs: Counter,
    /// BindReqs this shard served as owner.
    pub binds_owned: Counter,
    /// Highest shard-map generation installed so far.
    pub map_generation: Gauge,
}

impl ShardStats {
    /// Register the instrument set under `wacs.shard.*` in `registry`.
    pub fn in_registry(registry: &Registry) -> Self {
        let c = |name: &str| registry.counter(&format!("wacs.shard.{name}"));
        ShardStats {
            redirects_sent: c("redirects_sent"),
            redirects_followed: c("redirects_followed"),
            failovers: c("failovers"),
            map_syncs: c("map_syncs"),
            binds_owned: c("binds_owned"),
            map_generation: registry.gauge("wacs.shard.map_generation"),
        }
    }
}

/// Watches a stream of observed map generations and records any
/// regression — the chaos invariant checker's view of "breaker and
/// `ShardMap` generations stay monotone across restarts". Thread-safe
/// so concurrent observers (heartbeat syncers, chaos probes) can share
/// one witness.
#[derive(Debug, Default)]
pub struct GenerationWitness {
    state: wacs_sync::Mutex<(u64, u64)>, // (highest seen, regressions)
}

impl GenerationWitness {
    pub fn new() -> GenerationWitness {
        GenerationWitness::default()
    }

    /// Record one observation. Returns `false` — and counts a
    /// regression — when `generation` is older than something already
    /// seen. Equal generations are fine (re-announcements happen on
    /// every heartbeat reconnect).
    pub fn observe(&self, generation: u64) -> bool {
        let mut st = self.state.lock();
        if generation < st.0 {
            st.1 += 1;
            return false;
        }
        st.0 = generation;
        true
    }

    /// Highest generation observed so far.
    pub fn high_water(&self) -> u64 {
        self.state.lock().0
    }

    /// Observations that went backwards (must stay 0).
    pub fn regressions(&self) -> u64 {
        self.state.lock().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn map4() -> ShardMap {
        let tags = (0..4u16)
            .map(|i| member_tag(format!("outer{i}:7000").as_bytes()))
            .collect();
        ShardMap::new(1, tags)
    }

    #[test]
    fn ownership_is_deterministic_and_total() {
        let m = map4();
        for i in 0..64u16 {
            let key = bind_key("rwcp-sun", 40000 + i);
            let a = m.owner(&key).unwrap();
            let b = m.owner(&key).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
        assert_eq!(ShardMap::new(0, vec![]).owner(b"k"), None);
    }

    #[test]
    fn keys_spread_over_the_fleet() {
        let m = map4();
        let mut hits = [0usize; 4];
        for i in 0..256u16 {
            let key = bind_key("rwcp-sun", i);
            hits[m.owner(&key).unwrap()] += 1;
        }
        // HRW over 256 keys: every shard owns a meaningful share.
        for (i, &h) in hits.iter().enumerate() {
            assert!(h >= 16, "shard {i} owns only {h}/256 keys: {hits:?}");
        }
    }

    #[test]
    fn ladder_is_a_permutation_headed_by_the_owner() {
        let m = map4();
        for i in 0..64u16 {
            let key = bind_key("etl-sun", 5000 + i);
            let ladder = m.ladder(&key);
            let mut sorted = ladder.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "not a permutation: {ladder:?}");
            assert_eq!(ladder[0], m.owner(&key).unwrap());
        }
    }

    /// The HRW property the failover design leans on: kill any prefix
    /// of the ladder and recomputed ownership among the survivors is
    /// exactly the next rung.
    #[test]
    fn failover_agrees_with_recomputed_ownership() {
        let m = map4();
        for i in 0..64u16 {
            let key = bind_key("compas0", i);
            let ladder = m.ladder(&key);
            for dead_prefix in 0..ladder.len() {
                let dead = &ladder[..dead_prefix];
                let survivor = m.owner_among(&key, |i| !dead.contains(&i));
                assert_eq!(survivor, ladder.get(dead_prefix).copied());
            }
        }
    }

    #[test]
    fn route_redirects_non_owners_exactly() {
        let m = map4();
        let key = bind_key("rwcp-sun", 40001);
        let owner = m.owner(&key).unwrap();
        for s in 0..4 {
            match m.route(s, &key).unwrap() {
                ShardRoute::Own => assert_eq!(s, owner),
                ShardRoute::Redirect(o) => {
                    assert_eq!(o, owner);
                    assert_ne!(s, owner);
                }
            }
        }
        // A non-member must refuse to guess.
        assert_eq!(m.route(4, &key), None);
    }

    #[test]
    fn install_is_generation_monotone() {
        let mut m = map4();
        let newer = vec![member_tag(b"x:1"), member_tag(b"y:2")];
        assert!(!m.install(1, newer.clone())); // equal: refused
        assert!(!m.install(0, newer.clone())); // older: refused
        assert_eq!(m.len(), 4);
        assert!(m.install(2, newer));
        assert_eq!((m.generation(), m.len()), (2, 2));
    }

    #[test]
    fn router_walks_the_ladder_past_open_breakers() {
        let cfg = BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_secs(5),
        };
        let mut r = ShardRouter::new(map4(), cfg);
        let key = bind_key("rwcp-sun", 40007);
        let ladder = r.map().ladder(&key);
        assert_eq!(r.route(&key, 0), Some(ladder[0]));
        // Trip the owner's breaker: the router moves to rung 1.
        r.on_failure(ladder[0], 0);
        r.on_failure(ladder[0], 1);
        assert_eq!(r.route(&key, 2), Some(ladder[1]));
        // Trip rung 1 too: rung 2.
        r.on_failure(ladder[1], 2);
        r.on_failure(ladder[1], 3);
        assert_eq!(r.route(&key, 4), Some(ladder[2]));
        // After the cooldown the owner is probed again (half-open).
        let later = Duration::from_secs(6).as_nanos() as u64;
        assert_eq!(r.route(&key, later), Some(ladder[0]));
    }

    #[test]
    fn router_route_from_rings_past_open_breakers() {
        let cfg = BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(5),
        };
        let mut r = ShardRouter::new(map4(), cfg);
        // Lane affinity is positional, not hashed: lane i starts at
        // shard i % len and wraps.
        assert_eq!(r.route_from(2, 0), Some(2));
        assert_eq!(r.route_from(6, 0), Some(2));
        // A dead start rung falls over in ring order.
        r.on_failure(2, 0);
        assert_eq!(r.route_from(2, 1), Some(3));
        r.on_failure(3, 1);
        assert_eq!(r.route_from(2, 2), Some(0));
        // All open → None; after the cooldown the start rung probes.
        r.on_failure(0, 2);
        r.on_failure(1, 2);
        assert_eq!(r.route_from(2, 3), None);
        let later = Duration::from_secs(6).as_nanos() as u64;
        assert_eq!(r.route_from(2, later), Some(2));
    }

    #[test]
    fn router_reports_all_open_as_none() {
        let cfg = BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(5),
        };
        let mut r = ShardRouter::new(map4(), cfg);
        let key = bind_key("rwcp-sun", 1);
        for i in 0..4 {
            r.on_failure(i, 0);
        }
        assert_eq!(r.route(&key, 1), None);
    }

    #[test]
    fn router_install_resets_only_replaced_breakers() {
        let cfg = BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(5),
        };
        let mut r = ShardRouter::new(map4(), cfg);
        r.on_failure(0, 0);
        r.on_failure(1, 0);
        assert_eq!(r.breaker_state(0), Some(BreakerState::Open));
        // Replace member 1, keep the rest.
        let mut tags = r.map().tags().to_vec();
        tags[1] = member_tag(b"replacement:7000");
        assert!(r.install(2, tags));
        assert_eq!(r.breaker_state(0), Some(BreakerState::Open));
        assert_eq!(r.breaker_state(1), Some(BreakerState::Closed));
    }

    #[test]
    fn stats_register_under_wacs_shard() {
        let reg = Registry::new();
        let s = ShardStats::in_registry(&reg);
        s.redirects_sent.inc();
        s.map_generation.set(3);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("wacs.shard.redirects_sent"), Some(&1));
        assert_eq!(snap.gauges.get("wacs.shard.map_generation"), Some(&3));
    }
}
