//! Wire protocol of the Nexus Proxy (real-socket implementation).
//!
//! Control messages are length-prefixed frames:
//!
//! ```text
//! +--------+------+------------------+
//! | u32 BE | u8   | body             |
//! | length | type | (type-specific)  |
//! +--------+------+------------------+
//! ```
//!
//! `length` covers the type byte and body. Once a relay is negotiated
//! the stream leaves framed mode and both directions become an opaque
//! byte pipe (the relay copies, never parses — like the original).
//!
//! The message set mirrors the paper's §3:
//!
//! * `ConnectReq`/`ConnectRep` — active open (`NXProxyConnect`, Fig. 3);
//! * `BindReq`/`BindRep` — passive registration (`NXProxyBind`, Fig. 4
//!   steps 1-2);
//! * `RelayReq`/`RelayRep` — outer→inner completion of a passive open
//!   (Fig. 4 step 4);
//! * `Ping`/`Pong` — keepalive on the persistent outer→inner control
//!   session (dead-peer detection, PR 5);
//! * `Busy` — typed admission-control refusal (instead of silently
//!   accepting work the relay cannot finish);
//! * `BindSync` — the outer server mirrors its live bind registrations
//!   to the inner server, so a restarted inner server learns them
//!   again and can refuse relay requests for unregistered endpoints;
//! * `Redirect` — cross-shard bind lookup: an outer shard that does
//!   not own a bind key answers with the owner's control endpoint
//!   instead of a bare failure (sharded fleet, DESIGN.md §6d);
//! * `ShardSync` — generation-counted fleet-membership announcement,
//!   the BindSync discipline applied to the shard map itself.

use std::io::{self, Read, Write};

/// Upper bound on a control frame; anything larger is a protocol error
/// (relay *data* is never framed, so this only bounds control traffic).
pub const MAX_FRAME: u32 = 64 * 1024;

/// Reject a declared length before any allocation sized by it. A
/// malformed or adversarial peer controls the length prefix; capping
/// here means the decoder's allocations are bounded by [`MAX_FRAME`]
/// no matter what arrives on the wire.
fn check_frame_len(len: u32) -> io::Result<()> {
    if len == 0 || len > MAX_FRAME {
        return Err(bad(&format!(
            "bad frame length {len} (cap {MAX_FRAME} bytes)"
        )));
    }
    Ok(())
}

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Client → outer: connect me to `host:port` and start relaying.
    ConnectReq { host: String, port: u16 },
    /// Outer → client: dial outcome. On `ok`, the stream is now a pipe.
    ConnectRep { ok: bool, detail: String },
    /// Client → outer: I listen privately at `host:port`; allocate a
    /// rendezvous port on yourself and relay peers to me. `fallback`
    /// means the client *knows* this shard is not the key's HRW owner
    /// but could not reach the owner (breaker open / dials failing) —
    /// the shard must serve instead of redirecting, or a dead owner
    /// would bounce clients forever.
    BindReq {
        host: String,
        port: u16,
        fallback: bool,
    },
    /// Outer → client: rendezvous port allocated (0 = failure).
    BindRep { rdv_port: u16 },
    /// Outer → inner: a peer arrived for the client privately listening
    /// at `host:port`; dial it and bridge.
    RelayReq { host: String, port: u16 },
    /// Inner → outer: dial outcome. On `ok`, the stream is now a pipe.
    RelayRep { ok: bool },
    /// Keepalive probe on the outer→inner control session.
    Ping { seq: u32 },
    /// Keepalive reply, echoing the probe's sequence number.
    Pong { seq: u32 },
    /// Typed admission refusal: the server is at capacity; retry
    /// later. Sent instead of a `ConnectRep`/`BindRep`.
    Busy,
    /// Outer → inner: the complete set of live bind registrations
    /// (client private endpoints) *of the sending shard*. Replaces
    /// that shard's slice of the inner server's authorization table;
    /// re-sent after every reconnect so a restarted inner server
    /// re-learns the live binds.
    BindSync { binds: Vec<(String, u16)> },
    /// Outer → client: this shard does not own the requested bind
    /// key. Retry against the owner shard's control endpoint
    /// `host:port` — a typed "not mine, ask them" instead of a bare
    /// NotFound, so one stale shard choice costs one extra hop.
    Redirect { host: String, port: u16 },
    /// Fleet membership, generation-counted: the shard-map twin of
    /// `BindSync`. Receivers install it only if `gen` is strictly
    /// newer than what they hold, so a replaced shard re-announcing
    /// an old map cannot roll the fleet view back. `sender` is the
    /// announcing shard's index in `members` — on a control session it
    /// names the authorization slice the session's `BindSync` frames
    /// belong to (the accept side of a loopback socket cannot see who
    /// dialed, so identity must ride the wire).
    ShardSync {
        gen: u64,
        sender: u16,
        members: Vec<(String, u16)>,
    },
}

const T_CONNECT_REQ: u8 = 1;
const T_CONNECT_REP: u8 = 2;
const T_BIND_REQ: u8 = 3;
const T_BIND_REP: u8 = 4;
const T_RELAY_REQ: u8 = 5;
const T_RELAY_REP: u8 = 6;
const T_PING: u8 = 7;
const T_PONG: u8 = 8;
const T_BUSY: u8 = 9;
const T_BIND_SYNC: u8 = 10;
const T_REDIRECT: u8 = 11;
const T_SHARD_SYNC: u8 = 12;

/// Encoding failure: a message field cannot be represented on the wire.
///
/// The wire format length-prefixes strings with a `u16`; a longer
/// string used to be silently truncated to `len % 65536` via an `as`
/// cast, producing a frame whose prefix disagreed with its body — the
/// peer would then mis-parse or reject it with no hint of the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A string field exceeds the `u16` wire-length limit.
    StringTooLong {
        /// Which field overflowed (e.g. `"host"`).
        field: &'static str,
        /// Actual byte length of the offending string.
        len: usize,
    },
    /// The encoded frame (type byte + body) exceeds [`MAX_FRAME`].
    /// Encode and decode enforce the same cap: a frame we refuse to
    /// parse is a frame we refuse to produce. (Before this check the
    /// length was cast `as u32` unchecked, so an oversize body would
    /// be emitted only for the peer's decoder to reject it.)
    FrameTooLarge {
        /// Actual length of the oversize frame payload.
        len: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::StringTooLong { field, len } => write!(
                f,
                "{field} is {len} bytes; wire format caps strings at {} bytes",
                u16::MAX
            ),
            EncodeError::FrameTooLarge { len } => write!(
                f,
                "frame payload is {len} bytes; control frames cap at {MAX_FRAME} bytes"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<EncodeError> for io::Error {
    fn from(e: EncodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, field: &'static str, s: &str) -> Result<(), EncodeError> {
    let len = s.len();
    let wire_len = u16::try_from(len).map_err(|_| EncodeError::StringTooLong { field, len })?;
    put_u16(buf, wire_len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Byte-slice cursor for decoding (the `bytes::Buf` subset we need,
/// with totality: every read is bounds-checked). Shared with the
/// stripe-frame codec (`crate::stripe`), which follows the same
/// framing discipline.
pub(crate) struct Cursor<'a> {
    pub(crate) rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.rest.len() < n {
            return Err(bad("truncated frame"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    pub(crate) fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    pub(crate) fn get_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn get_u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_be_bytes(raw))
    }

    fn get_str(&mut self) -> io::Result<String> {
        let n = self.get_u16()? as usize;
        let body = self.take(n)?;
        String::from_utf8(body.to_vec()).map_err(|_| bad("non-utf8 string"))
    }

    pub(crate) fn get_i32(&mut self) -> io::Result<i32> {
        let b = self.take(4)?;
        Ok(i32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }
}

pub(crate) fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Msg {
    /// Encode into a framed byte buffer.
    ///
    /// Fails (rather than truncating) if a string field exceeds the
    /// `u16` wire-length limit.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut body = Vec::with_capacity(64);
        match self {
            Msg::ConnectReq { host, port } => {
                body.push(T_CONNECT_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::ConnectRep { ok, detail } => {
                body.push(T_CONNECT_REP);
                body.push(u8::from(*ok));
                put_str(&mut body, "detail", detail)?;
            }
            Msg::BindReq {
                host,
                port,
                fallback,
            } => {
                body.push(T_BIND_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
                body.push(u8::from(*fallback));
            }
            Msg::BindRep { rdv_port } => {
                body.push(T_BIND_REP);
                put_u16(&mut body, *rdv_port);
            }
            Msg::RelayReq { host, port } => {
                body.push(T_RELAY_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::RelayRep { ok } => {
                body.push(T_RELAY_REP);
                body.push(u8::from(*ok));
            }
            Msg::Ping { seq } => {
                body.push(T_PING);
                put_u32(&mut body, *seq);
            }
            Msg::Pong { seq } => {
                body.push(T_PONG);
                put_u32(&mut body, *seq);
            }
            Msg::Busy => {
                body.push(T_BUSY);
            }
            Msg::BindSync { binds } => {
                body.push(T_BIND_SYNC);
                let count = u16::try_from(binds.len()).map_err(|_| EncodeError::StringTooLong {
                    field: "binds",
                    len: binds.len(),
                })?;
                put_u16(&mut body, count);
                for (host, port) in binds {
                    put_str(&mut body, "host", host)?;
                    put_u16(&mut body, *port);
                }
            }
            Msg::Redirect { host, port } => {
                body.push(T_REDIRECT);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::ShardSync {
                gen,
                sender,
                members,
            } => {
                body.push(T_SHARD_SYNC);
                put_u64(&mut body, *gen);
                put_u16(&mut body, *sender);
                let count =
                    u16::try_from(members.len()).map_err(|_| EncodeError::StringTooLong {
                        field: "members",
                        len: members.len(),
                    })?;
                put_u16(&mut body, count);
                for (host, port) in members {
                    put_str(&mut body, "host", host)?;
                    put_u16(&mut body, *port);
                }
            }
        }
        // Enforce the cap symmetrically with `check_frame_len`: never
        // emit a frame the peer's decoder is required to reject. The
        // old `as u32` cast here could not truncate in practice (the
        // u16 string caps bound the body), but an oversize frame
        // would still have been *sent* and then refused remotely.
        if body.len() > MAX_FRAME as usize {
            return Err(EncodeError::FrameTooLarge { len: body.len() });
        }
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
        framed.extend_from_slice(&body);
        Ok(framed)
    }

    /// Decode one frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Msg> {
        let mut cur = Cursor { rest: body };
        if cur.rest.is_empty() {
            return Err(bad("empty frame"));
        }
        let t = cur.get_u8()?;
        let msg = match t {
            T_CONNECT_REQ => {
                let host = cur.get_str()?;
                Msg::ConnectReq {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_CONNECT_REP => {
                let ok = cur.get_u8()? != 0;
                Msg::ConnectRep {
                    ok,
                    detail: cur.get_str()?,
                }
            }
            T_BIND_REQ => {
                let host = cur.get_str()?;
                let port = cur.get_u16()?;
                Msg::BindReq {
                    host,
                    port,
                    fallback: cur.get_u8()? != 0,
                }
            }
            T_BIND_REP => Msg::BindRep {
                rdv_port: cur.get_u16()?,
            },
            T_RELAY_REQ => {
                let host = cur.get_str()?;
                Msg::RelayReq {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_RELAY_REP => Msg::RelayRep {
                ok: cur.get_u8()? != 0,
            },
            T_PING => Msg::Ping {
                seq: cur.get_u32()?,
            },
            T_PONG => Msg::Pong {
                seq: cur.get_u32()?,
            },
            T_BUSY => Msg::Busy,
            T_BIND_SYNC => {
                let count = cur.get_u16()? as usize;
                // Bound the declared count by the bytes actually
                // present (each entry is ≥ 4 bytes) *before* any
                // count-sized work — the count is attacker-controlled.
                if count > cur.rest.len() / 4 {
                    return Err(bad(&format!(
                        "bind count {count} exceeds frame ({} bytes left)",
                        cur.rest.len()
                    )));
                }
                let mut binds = Vec::with_capacity(count);
                for _ in 0..count {
                    let host = cur.get_str()?;
                    let port = cur.get_u16()?;
                    binds.push((host, port));
                }
                Msg::BindSync { binds }
            }
            T_REDIRECT => {
                let host = cur.get_str()?;
                Msg::Redirect {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_SHARD_SYNC => {
                let gen = cur.get_u64()?;
                let sender = cur.get_u16()?;
                let count = cur.get_u16()? as usize;
                // Same attacker-controlled-count bound as BindSync.
                if count > cur.rest.len() / 4 {
                    return Err(bad(&format!(
                        "member count {count} exceeds frame ({} bytes left)",
                        cur.rest.len()
                    )));
                }
                let mut members = Vec::with_capacity(count);
                for _ in 0..count {
                    let host = cur.get_str()?;
                    let port = cur.get_u16()?;
                    members.push((host, port));
                }
                Msg::ShardSync {
                    gen,
                    sender,
                    members,
                }
            }
            other => return Err(bad(&format!("unknown message type {other}"))),
        };
        if !cur.rest.is_empty() {
            return Err(bad("trailing bytes in frame"));
        }
        Ok(msg)
    }

    /// Write one framed message to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let framed = self.encode()?;
        w.write_all(&framed)?;
        w.flush()
    }

    /// Read one framed message from a stream.
    pub fn read_from(r: &mut impl Read) -> io::Result<Msg> {
        let mut len = [0u8; 4];
        // Generic `Read`; socket callers own the deadline (the servers
        // set read timeouts on their streams).
        r.read_exact(&mut len)?; // lint:allow(deadline-io)
        let len = u32::from_be_bytes(len);
        // Cap-check the declared length *before* allocating the body
        // buffer: the prefix is peer-controlled.
        check_frame_len(len)?;
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?; // lint:allow(deadline-io)
        Msg::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let framed = m.encode().unwrap();
        let len = u32::from_be_bytes(framed[0..4].try_into().unwrap());
        assert_eq!(len as usize, framed.len() - 4);
        let decoded = Msg::decode(&framed[4..]).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::ConnectReq {
            host: "etl-sun".into(),
            port: 5001,
        });
        roundtrip(Msg::ConnectRep {
            ok: true,
            detail: String::new(),
        });
        roundtrip(Msg::ConnectRep {
            ok: false,
            detail: "firewall dropped".into(),
        });
        roundtrip(Msg::BindReq {
            host: "rwcp-sun".into(),
            port: 40001,
            fallback: false,
        });
        roundtrip(Msg::BindReq {
            host: "rwcp-sun".into(),
            port: 40001,
            fallback: true,
        });
        roundtrip(Msg::BindRep { rdv_port: 6001 });
        roundtrip(Msg::BindRep { rdv_port: 0 });
        roundtrip(Msg::RelayReq {
            host: "compas0".into(),
            port: 40002,
        });
        roundtrip(Msg::RelayRep { ok: true });
    }

    #[test]
    fn stream_read_write() {
        let mut buf = Vec::new();
        let msgs = vec![
            Msg::ConnectReq {
                host: "a".into(),
                port: 1,
            },
            Msg::RelayRep { ok: false },
        ];
        for m in &msgs {
            m.write_to(&mut buf).unwrap();
        }
        let mut cur = std::io::Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&Msg::read_from(&mut cur).unwrap(), m);
        }
        // EOF afterwards.
        assert!(Msg::read_from(&mut cur).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Msg::decode(&[]).is_err());
        assert!(Msg::decode(&[99]).is_err());
        // Truncated string.
        assert!(Msg::decode(&[T_CONNECT_REQ, 0, 5, b'a']).is_err());
        // Trailing bytes.
        let mut f = Msg::RelayRep { ok: true }.encode().unwrap();
        f.push(0xFF);
        assert!(Msg::decode(&f[4..]).is_err());
        // Oversized frame length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.push(T_RELAY_REP);
        let mut cur = std::io::Cursor::new(buf);
        assert!(Msg::read_from(&mut cur).is_err());
    }

    /// Any (host, port) survives an encode/decode round trip in every
    /// host-carrying message — seeded sweep over hostname-alphabet
    /// strings of every length 0..=64.
    #[test]
    fn random_hosts_roundtrip() {
        let mut rng = netsim::SimRng::seed_from_u64(0x05750);
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-";
        for len in 0..=64usize {
            let host: String = (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
                .collect();
            let port = rng.below(u64::from(u16::MAX) + 1) as u16;
            roundtrip(Msg::ConnectReq {
                host: host.clone(),
                port,
            });
            roundtrip(Msg::BindReq {
                host: host.clone(),
                port,
                fallback: port & 1 == 0,
            });
            roundtrip(Msg::RelayReq { host, port });
        }
    }

    /// Oversized strings are rejected with a typed error instead of
    /// silently truncating the u16 length prefix (regression: the old
    /// `s.len() as u16` cast wrapped and produced corrupt frames).
    #[test]
    fn oversized_string_is_rejected_not_truncated() {
        let host = "h".repeat(usize::from(u16::MAX) + 1);
        let err = Msg::ConnectReq { host, port: 80 }.encode().unwrap_err();
        assert_eq!(
            err,
            EncodeError::StringTooLong {
                field: "host",
                len: usize::from(u16::MAX) + 1,
            }
        );
        // The io::Error mapping used by write_to classifies it as
        // InvalidData and keeps the message.
        let detail = "x".repeat(70_000);
        let m = Msg::ConnectRep { ok: false, detail };
        let io_err = m.write_to(&mut Vec::new()).unwrap_err();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("detail is 70000 bytes"));
        // A string at the u16 cap is fine *per-field*; the whole-frame
        // cap now governs (see frame_length_boundary_at_max_frame).
        let edge = Msg::ConnectReq {
            host: "h".repeat(usize::from(u16::MAX)),
            port: 80,
        };
        assert_eq!(
            edge.encode().unwrap_err(),
            EncodeError::FrameTooLarge {
                len: usize::from(u16::MAX) + 5,
            }
        );
    }

    /// Encode enforces [`MAX_FRAME`] symmetrically with decode: the
    /// largest encodable ConnectReq body is exactly `MAX_FRAME` bytes
    /// (type + u16 len + host + port), and one byte more is a typed
    /// `FrameTooLarge` — not a silently emitted frame the peer must
    /// reject (the old `as u32` path).
    #[test]
    fn frame_length_boundary_at_max_frame() {
        let fits = MAX_FRAME as usize - 5; // 1 type + 2 len + 2 port
        roundtrip(Msg::ConnectReq {
            host: "h".repeat(fits),
            port: 80,
        });
        let err = Msg::ConnectReq {
            host: "h".repeat(fits + 1),
            port: 80,
        }
        .encode()
        .unwrap_err();
        assert_eq!(
            err,
            EncodeError::FrameTooLarge {
                len: MAX_FRAME as usize + 1,
            }
        );
        // The io::Error mapping keeps the cause readable.
        let io_err: io::Error = err.into();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("frame payload"), "{io_err}");
        // Whatever encode emits, decode accepts: the caps agree.
        let frame = Msg::BindSync {
            binds: (0..4094).map(|i| ("aaaaaaaaah".into(), i)).collect(),
        }
        .encode()
        .unwrap();
        let len = u32::from_be_bytes(frame[0..4].try_into().unwrap());
        assert!(len <= MAX_FRAME);
    }

    #[test]
    fn liveness_messages_roundtrip() {
        roundtrip(Msg::Ping { seq: 0 });
        roundtrip(Msg::Ping { seq: u32::MAX });
        roundtrip(Msg::Pong { seq: 7 });
        roundtrip(Msg::Busy);
        roundtrip(Msg::BindSync { binds: vec![] });
        roundtrip(Msg::BindSync {
            binds: vec![("rwcp-sun".into(), 40001), ("compas0".into(), 40002)],
        });
    }

    #[test]
    fn shard_messages_roundtrip() {
        roundtrip(Msg::Redirect {
            host: "outer2".into(),
            port: 7002,
        });
        roundtrip(Msg::ShardSync {
            gen: 0,
            sender: 0,
            members: vec![],
        });
        roundtrip(Msg::ShardSync {
            gen: u64::MAX,
            sender: 1,
            members: vec![("outer0".into(), 7000), ("outer1".into(), 7001)],
        });
    }

    /// A `ShardSync` whose declared member count exceeds what the
    /// frame can hold is refused before any count-sized work, exactly
    /// like `BindSync`.
    #[test]
    fn shard_sync_count_is_bounded_by_frame() {
        let mut body = vec![T_SHARD_SYNC];
        body.extend_from_slice(&7u64.to_be_bytes()); // gen
        body.extend_from_slice(&0u16.to_be_bytes()); // sender
        body.extend_from_slice(&u16::MAX.to_be_bytes()); // count 65535
        body.extend_from_slice(&[0, 1, b'x', 0, 80][..]); // one real entry
        let err = Msg::decode(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("member count"), "{err}");
    }

    /// The declared-length cap is enforced before the body buffer is
    /// allocated: a 4 GiB length prefix must fail fast with the typed
    /// decode error, not attempt the allocation (regression for the
    /// unbounded-allocation class this PR closes).
    #[test]
    fn absurd_frame_length_rejected_before_allocation() {
        /// A reader that panics if anyone tries to read more than the
        /// 4-byte prefix — proof the cap fires before allocation+read.
        struct PrefixOnly(Vec<u8>, usize);
        impl Read for PrefixOnly {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                assert!(
                    self.1 < 4,
                    "decoder read past the length prefix of an absurd frame"
                );
                let n = buf.len().min(self.0.len() - self.1);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        for len in [MAX_FRAME + 1, u32::MAX, 1 << 30] {
            let mut r = PrefixOnly(len.to_be_bytes().to_vec(), 0);
            let err = Msg::read_from(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("bad frame length"), "{err}");
        }
    }

    /// A `BindSync` whose declared entry count exceeds what the frame
    /// can possibly hold is refused before any count-sized work.
    #[test]
    fn bind_sync_count_is_bounded_by_frame() {
        let mut body = vec![T_BIND_SYNC];
        body.extend_from_slice(&u16::MAX.to_be_bytes()); // count 65535
        body.extend_from_slice(&[0, 1, b'x', 0, 80][..]); // one real entry
        let err = Msg::decode(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bind count"), "{err}");
        // Oversized bind lists are refused at encode time, typed.
        let binds: Vec<(String, u16)> = (0..usize::from(u16::MAX) + 1)
            .map(|i| (format!("h{i}"), 1))
            .collect();
        assert_eq!(
            Msg::BindSync { binds }.encode().unwrap_err(),
            EncodeError::StringTooLong {
                field: "binds",
                len: usize::from(u16::MAX) + 1,
            }
        );
    }

    /// Random bytes never panic the decoder (totality).
    #[test]
    fn decoder_is_total_on_random_bytes() {
        let mut rng = netsim::SimRng::seed_from_u64(20260806);
        for round in 0..2000 {
            let len = (round % 128) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let _ = Msg::decode(&bytes);
        }
    }
}
