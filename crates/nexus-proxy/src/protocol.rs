//! Wire protocol of the Nexus Proxy (real-socket implementation).
//!
//! Control messages are length-prefixed frames:
//!
//! ```text
//! +--------+------+------------------+
//! | u32 BE | u8   | body             |
//! | length | type | (type-specific)  |
//! +--------+------+------------------+
//! ```
//!
//! `length` covers the type byte and body. Once a relay is negotiated
//! the stream leaves framed mode and both directions become an opaque
//! byte pipe (the relay copies, never parses — like the original).
//!
//! The message set mirrors the paper's §3:
//!
//! * `ConnectReq`/`ConnectRep` — active open (`NXProxyConnect`, Fig. 3);
//! * `BindReq`/`BindRep` — passive registration (`NXProxyBind`, Fig. 4
//!   steps 1-2);
//! * `RelayReq`/`RelayRep` — outer→inner completion of a passive open
//!   (Fig. 4 step 4);
//! * `Ping`/`Pong` — keepalive on the persistent outer→inner control
//!   session (dead-peer detection, PR 5);
//! * `Busy` — typed admission-control refusal (instead of silently
//!   accepting work the relay cannot finish);
//! * `BindSync` — the outer server mirrors its live bind registrations
//!   to the inner server, so a restarted inner server learns them
//!   again and can refuse relay requests for unregistered endpoints.

use std::io::{self, Read, Write};

/// Upper bound on a control frame; anything larger is a protocol error
/// (relay *data* is never framed, so this only bounds control traffic).
pub const MAX_FRAME: u32 = 64 * 1024;

/// Reject a declared length before any allocation sized by it. A
/// malformed or adversarial peer controls the length prefix; capping
/// here means the decoder's allocations are bounded by [`MAX_FRAME`]
/// no matter what arrives on the wire.
fn check_frame_len(len: u32) -> io::Result<()> {
    if len == 0 || len > MAX_FRAME {
        return Err(bad(&format!(
            "bad frame length {len} (cap {MAX_FRAME} bytes)"
        )));
    }
    Ok(())
}

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Client → outer: connect me to `host:port` and start relaying.
    ConnectReq { host: String, port: u16 },
    /// Outer → client: dial outcome. On `ok`, the stream is now a pipe.
    ConnectRep { ok: bool, detail: String },
    /// Client → outer: I listen privately at `host:port`; allocate a
    /// rendezvous port on yourself and relay peers to me.
    BindReq { host: String, port: u16 },
    /// Outer → client: rendezvous port allocated (0 = failure).
    BindRep { rdv_port: u16 },
    /// Outer → inner: a peer arrived for the client privately listening
    /// at `host:port`; dial it and bridge.
    RelayReq { host: String, port: u16 },
    /// Inner → outer: dial outcome. On `ok`, the stream is now a pipe.
    RelayRep { ok: bool },
    /// Keepalive probe on the outer→inner control session.
    Ping { seq: u32 },
    /// Keepalive reply, echoing the probe's sequence number.
    Pong { seq: u32 },
    /// Typed admission refusal: the server is at capacity; retry
    /// later. Sent instead of a `ConnectRep`/`BindRep`.
    Busy,
    /// Outer → inner: the complete set of live bind registrations
    /// (client private endpoints). Replaces the inner server's
    /// authorization table; re-sent after every reconnect so a
    /// restarted inner server re-learns the live binds.
    BindSync { binds: Vec<(String, u16)> },
}

const T_CONNECT_REQ: u8 = 1;
const T_CONNECT_REP: u8 = 2;
const T_BIND_REQ: u8 = 3;
const T_BIND_REP: u8 = 4;
const T_RELAY_REQ: u8 = 5;
const T_RELAY_REP: u8 = 6;
const T_PING: u8 = 7;
const T_PONG: u8 = 8;
const T_BUSY: u8 = 9;
const T_BIND_SYNC: u8 = 10;

/// Encoding failure: a message field cannot be represented on the wire.
///
/// The wire format length-prefixes strings with a `u16`; a longer
/// string used to be silently truncated to `len % 65536` via an `as`
/// cast, producing a frame whose prefix disagreed with its body — the
/// peer would then mis-parse or reject it with no hint of the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A string field exceeds the `u16` wire-length limit.
    StringTooLong {
        /// Which field overflowed (e.g. `"host"`).
        field: &'static str,
        /// Actual byte length of the offending string.
        len: usize,
    },
}

impl std::fmt::Display for EncodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EncodeError::StringTooLong { field, len } => write!(
                f,
                "{field} is {len} bytes; wire format caps strings at {} bytes",
                u16::MAX
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

impl From<EncodeError> for io::Error {
    fn from(e: EncodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

fn put_str(buf: &mut Vec<u8>, field: &'static str, s: &str) -> Result<(), EncodeError> {
    let len = s.len();
    let wire_len = u16::try_from(len).map_err(|_| EncodeError::StringTooLong { field, len })?;
    put_u16(buf, wire_len);
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Byte-slice cursor for decoding (the `bytes::Buf` subset we need,
/// with totality: every read is bounds-checked).
struct Cursor<'a> {
    rest: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.rest.len() < n {
            return Err(bad("truncated frame"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn get_u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn get_u16(&mut self) -> io::Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    fn get_u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn get_str(&mut self) -> io::Result<String> {
        let n = self.get_u16()? as usize;
        let body = self.take(n)?;
        String::from_utf8(body.to_vec()).map_err(|_| bad("non-utf8 string"))
    }
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Msg {
    /// Encode into a framed byte buffer.
    ///
    /// Fails (rather than truncating) if a string field exceeds the
    /// `u16` wire-length limit.
    pub fn encode(&self) -> Result<Vec<u8>, EncodeError> {
        let mut body = Vec::with_capacity(64);
        match self {
            Msg::ConnectReq { host, port } => {
                body.push(T_CONNECT_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::ConnectRep { ok, detail } => {
                body.push(T_CONNECT_REP);
                body.push(u8::from(*ok));
                put_str(&mut body, "detail", detail)?;
            }
            Msg::BindReq { host, port } => {
                body.push(T_BIND_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::BindRep { rdv_port } => {
                body.push(T_BIND_REP);
                put_u16(&mut body, *rdv_port);
            }
            Msg::RelayReq { host, port } => {
                body.push(T_RELAY_REQ);
                put_str(&mut body, "host", host)?;
                put_u16(&mut body, *port);
            }
            Msg::RelayRep { ok } => {
                body.push(T_RELAY_REP);
                body.push(u8::from(*ok));
            }
            Msg::Ping { seq } => {
                body.push(T_PING);
                put_u32(&mut body, *seq);
            }
            Msg::Pong { seq } => {
                body.push(T_PONG);
                put_u32(&mut body, *seq);
            }
            Msg::Busy => {
                body.push(T_BUSY);
            }
            Msg::BindSync { binds } => {
                body.push(T_BIND_SYNC);
                let count = u16::try_from(binds.len()).map_err(|_| EncodeError::StringTooLong {
                    field: "binds",
                    len: binds.len(),
                })?;
                put_u16(&mut body, count);
                for (host, port) in binds {
                    put_str(&mut body, "host", host)?;
                    put_u16(&mut body, *port);
                }
            }
        }
        let mut framed = Vec::with_capacity(4 + body.len());
        framed.extend_from_slice(&(body.len() as u32).to_be_bytes());
        framed.extend_from_slice(&body);
        Ok(framed)
    }

    /// Decode one frame body (without the length prefix).
    pub fn decode(body: &[u8]) -> io::Result<Msg> {
        let mut cur = Cursor { rest: body };
        if cur.rest.is_empty() {
            return Err(bad("empty frame"));
        }
        let t = cur.get_u8()?;
        let msg = match t {
            T_CONNECT_REQ => {
                let host = cur.get_str()?;
                Msg::ConnectReq {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_CONNECT_REP => {
                let ok = cur.get_u8()? != 0;
                Msg::ConnectRep {
                    ok,
                    detail: cur.get_str()?,
                }
            }
            T_BIND_REQ => {
                let host = cur.get_str()?;
                Msg::BindReq {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_BIND_REP => Msg::BindRep {
                rdv_port: cur.get_u16()?,
            },
            T_RELAY_REQ => {
                let host = cur.get_str()?;
                Msg::RelayReq {
                    host,
                    port: cur.get_u16()?,
                }
            }
            T_RELAY_REP => Msg::RelayRep {
                ok: cur.get_u8()? != 0,
            },
            T_PING => Msg::Ping {
                seq: cur.get_u32()?,
            },
            T_PONG => Msg::Pong {
                seq: cur.get_u32()?,
            },
            T_BUSY => Msg::Busy,
            T_BIND_SYNC => {
                let count = cur.get_u16()? as usize;
                // Bound the declared count by the bytes actually
                // present (each entry is ≥ 4 bytes) *before* any
                // count-sized work — the count is attacker-controlled.
                if count > cur.rest.len() / 4 {
                    return Err(bad(&format!(
                        "bind count {count} exceeds frame ({} bytes left)",
                        cur.rest.len()
                    )));
                }
                let mut binds = Vec::with_capacity(count);
                for _ in 0..count {
                    let host = cur.get_str()?;
                    let port = cur.get_u16()?;
                    binds.push((host, port));
                }
                Msg::BindSync { binds }
            }
            other => return Err(bad(&format!("unknown message type {other}"))),
        };
        if !cur.rest.is_empty() {
            return Err(bad("trailing bytes in frame"));
        }
        Ok(msg)
    }

    /// Write one framed message to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let framed = self.encode()?;
        w.write_all(&framed)?;
        w.flush()
    }

    /// Read one framed message from a stream.
    pub fn read_from(r: &mut impl Read) -> io::Result<Msg> {
        let mut len = [0u8; 4];
        // Generic `Read`; socket callers own the deadline (the servers
        // set read timeouts on their streams).
        r.read_exact(&mut len)?; // lint:allow(deadline-io)
        let len = u32::from_be_bytes(len);
        // Cap-check the declared length *before* allocating the body
        // buffer: the prefix is peer-controlled.
        check_frame_len(len)?;
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?; // lint:allow(deadline-io)
        Msg::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let framed = m.encode().unwrap();
        let len = u32::from_be_bytes(framed[0..4].try_into().unwrap());
        assert_eq!(len as usize, framed.len() - 4);
        let decoded = Msg::decode(&framed[4..]).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::ConnectReq {
            host: "etl-sun".into(),
            port: 5001,
        });
        roundtrip(Msg::ConnectRep {
            ok: true,
            detail: String::new(),
        });
        roundtrip(Msg::ConnectRep {
            ok: false,
            detail: "firewall dropped".into(),
        });
        roundtrip(Msg::BindReq {
            host: "rwcp-sun".into(),
            port: 40001,
        });
        roundtrip(Msg::BindRep { rdv_port: 6001 });
        roundtrip(Msg::BindRep { rdv_port: 0 });
        roundtrip(Msg::RelayReq {
            host: "compas0".into(),
            port: 40002,
        });
        roundtrip(Msg::RelayRep { ok: true });
    }

    #[test]
    fn stream_read_write() {
        let mut buf = Vec::new();
        let msgs = vec![
            Msg::ConnectReq {
                host: "a".into(),
                port: 1,
            },
            Msg::RelayRep { ok: false },
        ];
        for m in &msgs {
            m.write_to(&mut buf).unwrap();
        }
        let mut cur = std::io::Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&Msg::read_from(&mut cur).unwrap(), m);
        }
        // EOF afterwards.
        assert!(Msg::read_from(&mut cur).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Msg::decode(&[]).is_err());
        assert!(Msg::decode(&[99]).is_err());
        // Truncated string.
        assert!(Msg::decode(&[T_CONNECT_REQ, 0, 5, b'a']).is_err());
        // Trailing bytes.
        let mut f = Msg::RelayRep { ok: true }.encode().unwrap();
        f.push(0xFF);
        assert!(Msg::decode(&f[4..]).is_err());
        // Oversized frame length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.push(T_RELAY_REP);
        let mut cur = std::io::Cursor::new(buf);
        assert!(Msg::read_from(&mut cur).is_err());
    }

    /// Any (host, port) survives an encode/decode round trip in every
    /// host-carrying message — seeded sweep over hostname-alphabet
    /// strings of every length 0..=64.
    #[test]
    fn random_hosts_roundtrip() {
        let mut rng = netsim::SimRng::seed_from_u64(0x05750);
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-";
        for len in 0..=64usize {
            let host: String = (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
                .collect();
            let port = rng.below(u64::from(u16::MAX) + 1) as u16;
            roundtrip(Msg::ConnectReq {
                host: host.clone(),
                port,
            });
            roundtrip(Msg::BindReq {
                host: host.clone(),
                port,
            });
            roundtrip(Msg::RelayReq { host, port });
        }
    }

    /// Oversized strings are rejected with a typed error instead of
    /// silently truncating the u16 length prefix (regression: the old
    /// `s.len() as u16` cast wrapped and produced corrupt frames).
    #[test]
    fn oversized_string_is_rejected_not_truncated() {
        let host = "h".repeat(usize::from(u16::MAX) + 1);
        let err = Msg::ConnectReq { host, port: 80 }.encode().unwrap_err();
        assert_eq!(
            err,
            EncodeError::StringTooLong {
                field: "host",
                len: usize::from(u16::MAX) + 1,
            }
        );
        // The io::Error mapping used by write_to classifies it as
        // InvalidData and keeps the message.
        let detail = "x".repeat(70_000);
        let m = Msg::ConnectRep { ok: false, detail };
        let io_err = m.write_to(&mut Vec::new()).unwrap_err();
        assert_eq!(io_err.kind(), io::ErrorKind::InvalidData);
        assert!(io_err.to_string().contains("detail is 70000 bytes"));
        // Exactly u16::MAX bytes still fits.
        let edge = Msg::ConnectReq {
            host: "h".repeat(usize::from(u16::MAX)),
            port: 80,
        };
        roundtrip(edge);
    }

    #[test]
    fn liveness_messages_roundtrip() {
        roundtrip(Msg::Ping { seq: 0 });
        roundtrip(Msg::Ping { seq: u32::MAX });
        roundtrip(Msg::Pong { seq: 7 });
        roundtrip(Msg::Busy);
        roundtrip(Msg::BindSync { binds: vec![] });
        roundtrip(Msg::BindSync {
            binds: vec![("rwcp-sun".into(), 40001), ("compas0".into(), 40002)],
        });
    }

    /// The declared-length cap is enforced before the body buffer is
    /// allocated: a 4 GiB length prefix must fail fast with the typed
    /// decode error, not attempt the allocation (regression for the
    /// unbounded-allocation class this PR closes).
    #[test]
    fn absurd_frame_length_rejected_before_allocation() {
        /// A reader that panics if anyone tries to read more than the
        /// 4-byte prefix — proof the cap fires before allocation+read.
        struct PrefixOnly(Vec<u8>, usize);
        impl Read for PrefixOnly {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                assert!(
                    self.1 < 4,
                    "decoder read past the length prefix of an absurd frame"
                );
                let n = buf.len().min(self.0.len() - self.1);
                buf[..n].copy_from_slice(&self.0[self.1..self.1 + n]);
                self.1 += n;
                Ok(n)
            }
        }
        for len in [MAX_FRAME + 1, u32::MAX, 1 << 30] {
            let mut r = PrefixOnly(len.to_be_bytes().to_vec(), 0);
            let err = Msg::read_from(&mut r).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
            assert!(err.to_string().contains("bad frame length"), "{err}");
        }
    }

    /// A `BindSync` whose declared entry count exceeds what the frame
    /// can possibly hold is refused before any count-sized work.
    #[test]
    fn bind_sync_count_is_bounded_by_frame() {
        let mut body = vec![T_BIND_SYNC];
        body.extend_from_slice(&u16::MAX.to_be_bytes()); // count 65535
        body.extend_from_slice(&[0, 1, b'x', 0, 80][..]); // one real entry
        let err = Msg::decode(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("bind count"), "{err}");
        // Oversized bind lists are refused at encode time, typed.
        let binds: Vec<(String, u16)> = (0..usize::from(u16::MAX) + 1)
            .map(|i| (format!("h{i}"), 1))
            .collect();
        assert_eq!(
            Msg::BindSync { binds }.encode().unwrap_err(),
            EncodeError::StringTooLong {
                field: "binds",
                len: usize::from(u16::MAX) + 1,
            }
        );
    }

    /// Random bytes never panic the decoder (totality).
    #[test]
    fn decoder_is_total_on_random_bytes() {
        let mut rng = netsim::SimRng::seed_from_u64(20260806);
        for round in 0..2000 {
            let len = (round % 128) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let _ = Msg::decode(&bytes);
        }
    }
}
