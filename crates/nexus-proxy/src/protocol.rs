//! Wire protocol of the Nexus Proxy (real-socket implementation).
//!
//! Control messages are length-prefixed frames:
//!
//! ```text
//! +--------+------+------------------+
//! | u32 BE | u8   | body             |
//! | length | type | (type-specific)  |
//! +--------+------+------------------+
//! ```
//!
//! `length` covers the type byte and body. Once a relay is negotiated
//! the stream leaves framed mode and both directions become an opaque
//! byte pipe (the relay copies, never parses — like the original).
//!
//! The message set mirrors the paper's §3:
//!
//! * `ConnectReq`/`ConnectRep` — active open (`NXProxyConnect`, Fig. 3);
//! * `BindReq`/`BindRep` — passive registration (`NXProxyBind`, Fig. 4
//!   steps 1-2);
//! * `RelayReq`/`RelayRep` — outer→inner completion of a passive open
//!   (Fig. 4 step 4).

use bytes::{Buf, BufMut, BytesMut};
use std::io::{self, Read, Write};

/// Upper bound on a control frame; anything larger is a protocol error
/// (relay *data* is never framed, so this only bounds control traffic).
pub const MAX_FRAME: u32 = 64 * 1024;

/// A control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Client → outer: connect me to `host:port` and start relaying.
    ConnectReq { host: String, port: u16 },
    /// Outer → client: dial outcome. On `ok`, the stream is now a pipe.
    ConnectRep { ok: bool, detail: String },
    /// Client → outer: I listen privately at `host:port`; allocate a
    /// rendezvous port on yourself and relay peers to me.
    BindReq { host: String, port: u16 },
    /// Outer → client: rendezvous port allocated (0 = failure).
    BindRep { rdv_port: u16 },
    /// Outer → inner: a peer arrived for the client privately listening
    /// at `host:port`; dial it and bridge.
    RelayReq { host: String, port: u16 },
    /// Inner → outer: dial outcome. On `ok`, the stream is now a pipe.
    RelayRep { ok: bool },
}

const T_CONNECT_REQ: u8 = 1;
const T_CONNECT_REP: u8 = 2;
const T_BIND_REQ: u8 = 3;
const T_BIND_REP: u8 = 4;
const T_RELAY_REQ: u8 = 5;
const T_RELAY_REP: u8 = 6;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u16(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut impl Buf) -> io::Result<String> {
    if buf.remaining() < 2 {
        return Err(bad("truncated string length"));
    }
    let n = buf.get_u16() as usize;
    if buf.remaining() < n {
        return Err(bad("truncated string body"));
    }
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    String::from_utf8(v).map_err(|_| bad("non-utf8 string"))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl Msg {
    /// Encode into a framed byte buffer.
    pub fn encode(&self) -> BytesMut {
        let mut body = BytesMut::with_capacity(64);
        match self {
            Msg::ConnectReq { host, port } => {
                body.put_u8(T_CONNECT_REQ);
                put_str(&mut body, host);
                body.put_u16(*port);
            }
            Msg::ConnectRep { ok, detail } => {
                body.put_u8(T_CONNECT_REP);
                body.put_u8(u8::from(*ok));
                put_str(&mut body, detail);
            }
            Msg::BindReq { host, port } => {
                body.put_u8(T_BIND_REQ);
                put_str(&mut body, host);
                body.put_u16(*port);
            }
            Msg::BindRep { rdv_port } => {
                body.put_u8(T_BIND_REP);
                body.put_u16(*rdv_port);
            }
            Msg::RelayReq { host, port } => {
                body.put_u8(T_RELAY_REQ);
                put_str(&mut body, host);
                body.put_u16(*port);
            }
            Msg::RelayRep { ok } => {
                body.put_u8(T_RELAY_REP);
                body.put_u8(u8::from(*ok));
            }
        }
        let mut framed = BytesMut::with_capacity(4 + body.len());
        framed.put_u32(body.len() as u32);
        framed.extend_from_slice(&body);
        framed
    }

    /// Decode one frame body (without the length prefix).
    pub fn decode(mut body: &[u8]) -> io::Result<Msg> {
        if body.is_empty() {
            return Err(bad("empty frame"));
        }
        let t = body.get_u8();
        let msg = match t {
            T_CONNECT_REQ => {
                let host = get_str(&mut body)?;
                if body.remaining() < 2 {
                    return Err(bad("truncated port"));
                }
                Msg::ConnectReq {
                    host,
                    port: body.get_u16(),
                }
            }
            T_CONNECT_REP => {
                if body.remaining() < 1 {
                    return Err(bad("truncated ok flag"));
                }
                let ok = body.get_u8() != 0;
                Msg::ConnectRep {
                    ok,
                    detail: get_str(&mut body)?,
                }
            }
            T_BIND_REQ => {
                let host = get_str(&mut body)?;
                if body.remaining() < 2 {
                    return Err(bad("truncated port"));
                }
                Msg::BindReq {
                    host,
                    port: body.get_u16(),
                }
            }
            T_BIND_REP => {
                if body.remaining() < 2 {
                    return Err(bad("truncated rdv port"));
                }
                Msg::BindRep {
                    rdv_port: body.get_u16(),
                }
            }
            T_RELAY_REQ => {
                let host = get_str(&mut body)?;
                if body.remaining() < 2 {
                    return Err(bad("truncated port"));
                }
                Msg::RelayReq {
                    host,
                    port: body.get_u16(),
                }
            }
            T_RELAY_REP => {
                if body.remaining() < 1 {
                    return Err(bad("truncated ok flag"));
                }
                Msg::RelayRep {
                    ok: body.get_u8() != 0,
                }
            }
            other => return Err(bad(&format!("unknown message type {other}"))),
        };
        if body.has_remaining() {
            return Err(bad("trailing bytes in frame"));
        }
        Ok(msg)
    }

    /// Write one framed message to a stream.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let framed = self.encode();
        w.write_all(&framed)?;
        w.flush()
    }

    /// Read one framed message from a stream.
    pub fn read_from(r: &mut impl Read) -> io::Result<Msg> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_be_bytes(len);
        if len == 0 || len > MAX_FRAME {
            return Err(bad(&format!("bad frame length {len}")));
        }
        let mut body = vec![0u8; len as usize];
        r.read_exact(&mut body)?;
        Msg::decode(&body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(m: Msg) {
        let framed = m.encode();
        let len = u32::from_be_bytes(framed[0..4].try_into().unwrap());
        assert_eq!(len as usize, framed.len() - 4);
        let decoded = Msg::decode(&framed[4..]).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(Msg::ConnectReq {
            host: "etl-sun".into(),
            port: 5001,
        });
        roundtrip(Msg::ConnectRep {
            ok: true,
            detail: String::new(),
        });
        roundtrip(Msg::ConnectRep {
            ok: false,
            detail: "firewall dropped".into(),
        });
        roundtrip(Msg::BindReq {
            host: "rwcp-sun".into(),
            port: 40001,
        });
        roundtrip(Msg::BindRep { rdv_port: 6001 });
        roundtrip(Msg::BindRep { rdv_port: 0 });
        roundtrip(Msg::RelayReq {
            host: "compas0".into(),
            port: 40002,
        });
        roundtrip(Msg::RelayRep { ok: true });
    }

    #[test]
    fn stream_read_write() {
        let mut buf = Vec::new();
        let msgs = vec![
            Msg::ConnectReq {
                host: "a".into(),
                port: 1,
            },
            Msg::RelayRep { ok: false },
        ];
        for m in &msgs {
            m.write_to(&mut buf).unwrap();
        }
        let mut cur = std::io::Cursor::new(buf);
        for m in &msgs {
            assert_eq!(&Msg::read_from(&mut cur).unwrap(), m);
        }
        // EOF afterwards.
        assert!(Msg::read_from(&mut cur).is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Msg::decode(&[]).is_err());
        assert!(Msg::decode(&[99]).is_err());
        // Truncated string.
        assert!(Msg::decode(&[T_CONNECT_REQ, 0, 5, b'a']).is_err());
        // Trailing bytes.
        let mut f = Msg::RelayRep { ok: true }.encode();
        f.put_u8(0xFF);
        assert!(Msg::decode(&f[4..]).is_err());
        // Oversized frame length.
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        buf.push(T_RELAY_REP);
        let mut cur = std::io::Cursor::new(buf);
        assert!(Msg::read_from(&mut cur).is_err());
    }

    proptest::proptest! {
        /// Any (host, port) survives an encode/decode round trip in
        /// every host-carrying message.
        #[test]
        fn prop_roundtrip_hosts(host in "[a-zA-Z0-9.-]{0,64}", port: u16) {
            roundtrip(Msg::ConnectReq { host: host.clone(), port });
            roundtrip(Msg::BindReq { host: host.clone(), port });
            roundtrip(Msg::RelayReq { host, port });
        }

        /// Random bytes never panic the decoder.
        #[test]
        fn prop_decoder_total(bytes in proptest::collection::vec(0u8..=255, 0..128)) {
            let _ = Msg::decode(&bytes);
        }
    }
}
