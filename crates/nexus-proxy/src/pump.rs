//! The relay pump: bidirectional byte copying between two streams.
//!
//! One thread per direction, fixed buffer (the relay's chunk size —
//! the store-and-forward granularity the simulator also models).
//! Clean EOF propagates as a *half-close* (the reverse direction may
//! still be carrying a reply); hard errors reset both sockets so the
//! opposite thread unblocks.

use crate::stats::ProxyStats;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::thread;

/// Default relay buffer (matches `netsim::NetConfig::chunk_bytes`).
pub const DEFAULT_CHUNK: usize = 8192;

fn copy_dir(mut from: TcpStream, mut to: TcpStream, chunk: usize, stats: Arc<ProxyStats>) {
    let mut buf = vec![0u8; chunk];
    loop {
        match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate as a half-close so the reverse
                // direction (e.g. a reply still in flight) survives.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Err(_) => break,
            Ok(n) => {
                // Count before writing so observers that already see
                // the bytes on the far side also see the counter.
                stats.add_bytes(n as u64);
                let seg = std::time::Instant::now();
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                stats
                    .pump_segment_ns
                    .record(seg.elapsed().as_nanos() as u64);
            }
        }
    }
    // Hard error: reset both ends.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Bridge `a` and `b` until either side closes. Blocks until both
/// directions have drained; returns total relayed bytes for this pair.
pub fn pump(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) -> u64 {
    let before = stats.snapshot().relayed_bytes;
    let (a2, b2) = (a.try_clone(), b.try_clone());
    match (a2, b2) {
        (Ok(a2), Ok(b2)) => {
            let s1 = stats.clone();
            let t = thread::spawn(move || copy_dir(a2, b2, chunk, s1));
            copy_dir(b, a, chunk, stats.clone());
            let _ = t.join();
        }
        _ => {
            // Clone failure: fall back to one direction only (rare;
            // keeps the relay from wedging).
            copy_dir(a, b, chunk, stats.clone());
        }
    }
    stats.snapshot().relayed_bytes - before
}

/// Spawn the pump on background threads and return immediately.
pub fn pump_detached(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) {
    thread::spawn(move || {
        pump(a, b, chunk, stats);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Build a connected (client, server-side) socket pair on loopback.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn pump_bridges_both_directions() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 1024, stats.clone());

        left_app.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        right_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        right_app.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        left_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");

        // Closing one side propagates EOF to the other.
        drop(left_app);
        let mut rest = Vec::new();
        right_app.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(stats.snapshot().relayed_bytes >= 9);
    }

    #[test]
    fn pump_moves_bulk_data_intact() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 512, stats.clone());

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let data2 = data.clone();
        let w = thread::spawn(move || {
            left_app.write_all(&data2).unwrap();
            drop(left_app); // EOF so the reader terminates
        });
        let mut got = Vec::new();
        right_app.read_to_end(&mut got).unwrap();
        w.join().unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.snapshot().relayed_bytes, 100_000);
    }
}
