//! The thread-pair relay pump: bidirectional byte copying between two
//! streams.
//!
//! One thread per direction, pooled fixed-size buffer (the relay's
//! chunk size — the store-and-forward granularity the simulator also
//! models). Clean EOF propagates as a *half-close* (the reverse
//! direction may still be carrying a reply); hard errors reset both
//! sockets so the opposite thread unblocks.
//!
//! This is the *compatibility* data plane: two threads per relay caps
//! out at thousands of concurrent users. The readiness-driven
//! multiplexed pump in [`crate::reactor`] drives many relays per
//! thread and is selected per-server with
//! [`crate::outer::PumpMode::Reactor`].

use crate::pool::{BufferPool, PoolConfig};
use crate::stats::ProxyStats;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default relay buffer (matches `netsim::NetConfig::chunk_bytes`).
pub const DEFAULT_CHUNK: usize = 8192;

/// Last-activity clock of one relay, shared between the pump threads
/// (writers) and the outer server's idle-reaper (reader). A relay
/// whose peers both went silent — the half-open TCP case — stops
/// touching this and becomes reapable.
#[derive(Clone)]
pub struct RelayActivity {
    epoch: Instant,
    // A timestamp cell, not a metric: it must be read-modify-write
    // shared across pump threads, which a wacs-obs Counter is not.
    last: Arc<AtomicU64>, // lint:allow(bare-atomic-counter)
}

impl Default for RelayActivity {
    fn default() -> Self {
        Self::new()
    }
}

impl RelayActivity {
    /// A fresh activity clock, initialized to *now*: a relay that has
    /// not yet moved a byte is "just active", never idle-since-epoch,
    /// so a short idle timeout cannot reap it at birth.
    pub fn new() -> Self {
        let a = RelayActivity {
            epoch: Instant::now(),
            last: Arc::new(AtomicU64::new(0)), // lint:allow(bare-atomic-counter)
        };
        a.touch();
        a
    }

    /// Record activity now.
    pub fn touch(&self) {
        self.last
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// How long since the last recorded activity.
    pub fn idle_for(&self) -> Duration {
        let now = self.epoch.elapsed().as_nanos() as u64;
        Duration::from_nanos(now.saturating_sub(self.last.load(Ordering::Relaxed)))
    }
}

/// How one copy direction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyEnd {
    /// The source reached clean EOF; propagate as a half-close.
    CleanEof,
    /// A hard read or write error; reset both ends.
    Error,
}

/// The transport-agnostic copy loop: read a chunk, forward it, repeat.
/// Bytes count toward `relayed_bytes` only *after* the write lands — a
/// failed write must not inflate the counter (the far side never saw
/// those bytes).
///
/// Public so out-of-tree stream plumbing (the `wacs-chaos` interposer's
/// clean forwarding path) reuses the battle-tested loop and its
/// accounting instead of growing a second one.
pub fn copy_loop<R: Read, W: Write>(
    from: &mut R,
    to: &mut W,
    buf: &mut [u8],
    stats: &ProxyStats,
    activity: Option<&RelayActivity>,
) -> CopyEnd {
    loop {
        match from.read(buf) {
            Ok(0) => return CopyEnd::CleanEof,
            Err(_) => return CopyEnd::Error,
            Ok(n) => {
                if let Some(a) = activity {
                    a.touch();
                }
                let seg = Instant::now();
                if to.write_all(&buf[..n]).is_err() {
                    return CopyEnd::Error;
                }
                stats.add_bytes(n as u64);
                stats.pump_segments.inc();
                stats
                    .pump_segment_ns
                    .record(seg.elapsed().as_nanos() as u64);
            }
        }
    }
}

fn copy_dir(
    mut from: TcpStream,
    mut to: TcpStream,
    chunk: usize,
    stats: Arc<ProxyStats>,
    activity: Option<RelayActivity>,
    pool: &BufferPool,
) {
    let mut buf = pool.get(chunk);
    let chunk = chunk.min(buf.len()).max(1);
    match copy_loop(
        &mut from,
        &mut to,
        &mut buf[..chunk],
        &stats,
        activity.as_ref(),
    ) {
        CopyEnd::CleanEof => {
            // Clean EOF: propagate as a half-close so the reverse
            // direction (e.g. a reply still in flight) survives.
            let _ = to.shutdown(Shutdown::Write);
        }
        CopyEnd::Error => {
            // Hard error: reset both ends.
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
        }
    }
}

/// Bridge `a` and `b` until either side closes. Blocks until both
/// directions have drained; returns total relayed bytes for this pair.
pub fn pump(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) -> u64 {
    pump_tracked(a, b, chunk, stats, None)
}

/// [`pump`], additionally touching `activity` on every forwarded
/// segment so an idle-reaper can spot dead pairs.
pub fn pump_tracked(
    a: TcpStream,
    b: TcpStream,
    chunk: usize,
    stats: Arc<ProxyStats>,
    activity: Option<RelayActivity>,
) -> u64 {
    // Throwaway two-segment pool: standalone pumps see the pooled code
    // path; servers share one pool across relays via [`pump_pooled`].
    let pool = BufferPool::with_counters(
        PoolConfig {
            seg_bytes: chunk.max(1),
            max_retained: 2,
        },
        stats.pool_hits.clone(),
        stats.pool_misses.clone(),
    );
    pump_pooled(a, b, chunk, stats, activity, &pool)
}

/// [`pump_tracked`] drawing chunk buffers from a caller-shared
/// [`BufferPool`] — the server path, where relays churn and the pool
/// amortizes staging-buffer allocation across all of them.
pub fn pump_pooled(
    a: TcpStream,
    b: TcpStream,
    chunk: usize,
    stats: Arc<ProxyStats>,
    activity: Option<RelayActivity>,
    pool: &BufferPool,
) -> u64 {
    let before = stats.snapshot().relayed_bytes;
    let (a2, b2) = (a.try_clone(), b.try_clone());
    match (a2, b2) {
        (Ok(a2), Ok(b2)) => {
            let s1 = stats.clone();
            let act = activity.clone();
            let p = pool.clone();
            let t = thread::spawn(move || copy_dir(a2, b2, chunk, s1, act, &p));
            copy_dir(b, a, chunk, stats.clone(), activity, pool);
            let _ = t.join();
        }
        _ => {
            // Clone failure: the pair cannot be pumped bidirectionally.
            // Degrading to one-directional copying would silently break
            // transparency, so reset both ends and account the failure.
            stats.pump_clone_failures.inc();
            let _ = a.shutdown(Shutdown::Both);
            let _ = b.shutdown(Shutdown::Both);
        }
    }
    stats.snapshot().relayed_bytes - before
}

/// Spawn the pump on background threads and return immediately.
pub fn pump_detached(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) {
    thread::spawn(move || {
        pump(a, b, chunk, stats);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Build a connected (client, server-side) socket pair on loopback.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn pump_bridges_both_directions() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 1024, stats.clone());

        left_app.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        right_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        right_app.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        left_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");

        // Closing one side propagates EOF to the other.
        drop(left_app);
        let mut rest = Vec::new();
        right_app.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(stats.snapshot().relayed_bytes >= 9);
    }

    #[test]
    fn pump_moves_bulk_data_intact() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 512, stats.clone());

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let data2 = data.clone();
        let w = thread::spawn(move || {
            left_app.write_all(&data2).unwrap();
            drop(left_app); // EOF so the reader terminates
        });
        let mut got = Vec::new();
        right_app.read_to_end(&mut got).unwrap();
        w.join().unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.snapshot().relayed_bytes, 100_000);
    }

    /// A writer that accepts exactly `limit` bytes, then fails hard —
    /// the deterministic analogue of a peer killed mid-transfer.
    struct DyingWriter {
        limit: usize,
        written: usize,
    }

    impl Write for DyingWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.written >= self.limit {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "peer died",
                ));
            }
            let n = buf.len().min(self.limit - self.written);
            self.written += n;
            Ok(n)
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Byte-accounting pin: when the write side dies mid-transfer, only
    /// bytes that actually landed count toward `relayed_bytes` — the
    /// chunk whose write failed must not inflate the counter.
    #[test]
    fn failed_writes_do_not_inflate_relayed_bytes() {
        let stats = ProxyStats::default();
        let payload = vec![7u8; 10_000];
        let mut from = std::io::Cursor::new(payload);
        // Dies 1500 bytes in: mid-way through the second 1024-byte
        // chunk, so the failing write_all has partially succeeded.
        let mut to = DyingWriter {
            limit: 1500,
            written: 0,
        };
        let mut buf = [0u8; 1024];
        let end = copy_loop(&mut from, &mut to, &mut buf, &stats, None);
        assert_eq!(end, CopyEnd::Error);
        // Exactly one full chunk succeeded; the second chunk's write
        // failed after a partial transfer and is not counted.
        assert_eq!(stats.snapshot().relayed_bytes, 1024);
    }

    /// Same property over real sockets: kill the receiving app socket
    /// mid-transfer and confirm the counter never exceeds what the
    /// sender pushed (the old code counted reads before writes, so a
    /// failed write inflated the total).
    #[test]
    fn killed_receiver_caps_byte_accounting() {
        let (mut left_app, left_relay) = socket_pair();
        let (right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 2048, stats.clone());

        // Kill the read side immediately: pending relay writes will
        // eventually fail (RST once the receive buffer logic kicks in).
        drop(right_app);
        let chunk = vec![3u8; 4096];
        let mut sent = 0u64;
        for _ in 0..256 {
            match left_app.write_all(&chunk) {
                Ok(()) => sent += chunk.len() as u64,
                Err(_) => break,
            }
        }
        drop(left_app);
        // Give the pump a moment to drain/fail.
        let deadline = Instant::now() + Duration::from_secs(5);
        while stats.snapshot().relayed_bytes > sent && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        assert!(
            stats.snapshot().relayed_bytes <= sent,
            "relayed_bytes {} exceeds bytes sent {}",
            stats.snapshot().relayed_bytes,
            sent
        );
    }

    /// A fresh activity clock reads as *just touched*, not idle since
    /// some epoch — the regression that made new relays instantly
    /// reapable under a short idle timeout.
    #[test]
    fn fresh_relay_activity_is_not_idle() {
        let a = RelayActivity::new();
        assert!(
            a.idle_for() < Duration::from_secs(1),
            "fresh activity clock reports {:?} idle",
            a.idle_for()
        );
    }

    #[test]
    fn shared_pool_is_reused_across_pumps() {
        let stats = Arc::new(ProxyStats::default());
        let pool = BufferPool::with_counters(
            PoolConfig {
                seg_bytes: 4096,
                max_retained: 8,
            },
            stats.pool_hits.clone(),
            stats.pool_misses.clone(),
        );
        for _ in 0..3 {
            let (mut l, lr) = socket_pair();
            let (mut r, rr) = socket_pair();
            let s = stats.clone();
            let p = pool.clone();
            let t = thread::spawn(move || pump_pooled(lr, rr, 1024, s, None, &p));
            l.write_all(b"abc").unwrap();
            drop(l);
            let mut got = Vec::new();
            r.read_to_end(&mut got).unwrap();
            assert_eq!(got, b"abc");
            drop(r);
            t.join().unwrap();
        }
        let snap = stats.snapshot();
        assert!(
            snap.pool_hits >= 2,
            "later pumps must reuse pooled buffers (hits={}, misses={})",
            snap.pool_hits,
            snap.pool_misses
        );
    }
}
