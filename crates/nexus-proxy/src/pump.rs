//! The relay pump: bidirectional byte copying between two streams.
//!
//! One thread per direction, fixed buffer (the relay's chunk size —
//! the store-and-forward granularity the simulator also models).
//! Clean EOF propagates as a *half-close* (the reverse direction may
//! still be carrying a reply); hard errors reset both sockets so the
//! opposite thread unblocks.

use crate::stats::ProxyStats;
use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Default relay buffer (matches `netsim::NetConfig::chunk_bytes`).
pub const DEFAULT_CHUNK: usize = 8192;

/// Last-activity clock of one relay, shared between the pump threads
/// (writers) and the outer server's idle-reaper (reader). A relay
/// whose peers both went silent — the half-open TCP case — stops
/// touching this and becomes reapable.
#[derive(Clone)]
pub struct RelayActivity {
    epoch: Instant,
    // A timestamp cell, not a metric: it must be read-modify-write
    // shared across pump threads, which a wacs-obs Counter is not.
    last: Arc<AtomicU64>, // lint:allow(bare-atomic-counter)
}

impl Default for RelayActivity {
    fn default() -> Self {
        Self::new()
    }
}

impl RelayActivity {
    pub fn new() -> Self {
        RelayActivity {
            epoch: Instant::now(),
            last: Arc::new(AtomicU64::new(0)), // lint:allow(bare-atomic-counter)
        }
    }

    /// Record activity now.
    pub fn touch(&self) {
        self.last
            .store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// How long since the last recorded activity.
    pub fn idle_for(&self) -> Duration {
        let now = self.epoch.elapsed().as_nanos() as u64;
        Duration::from_nanos(now.saturating_sub(self.last.load(Ordering::Relaxed)))
    }
}

fn copy_dir(
    mut from: TcpStream,
    mut to: TcpStream,
    chunk: usize,
    stats: Arc<ProxyStats>,
    activity: Option<RelayActivity>,
) {
    let mut buf = vec![0u8; chunk];
    loop {
        match from.read(&mut buf) {
            Ok(0) => {
                // Clean EOF: propagate as a half-close so the reverse
                // direction (e.g. a reply still in flight) survives.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Err(_) => break,
            Ok(n) => {
                // Count before writing so observers that already see
                // the bytes on the far side also see the counter.
                stats.add_bytes(n as u64);
                if let Some(a) = &activity {
                    a.touch();
                }
                let seg = std::time::Instant::now();
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
                stats
                    .pump_segment_ns
                    .record(seg.elapsed().as_nanos() as u64);
            }
        }
    }
    // Hard error: reset both ends.
    let _ = from.shutdown(Shutdown::Both);
    let _ = to.shutdown(Shutdown::Both);
}

/// Bridge `a` and `b` until either side closes. Blocks until both
/// directions have drained; returns total relayed bytes for this pair.
pub fn pump(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) -> u64 {
    pump_tracked(a, b, chunk, stats, None)
}

/// [`pump`], additionally touching `activity` on every forwarded
/// segment so an idle-reaper can spot dead pairs.
pub fn pump_tracked(
    a: TcpStream,
    b: TcpStream,
    chunk: usize,
    stats: Arc<ProxyStats>,
    activity: Option<RelayActivity>,
) -> u64 {
    let before = stats.snapshot().relayed_bytes;
    let (a2, b2) = (a.try_clone(), b.try_clone());
    match (a2, b2) {
        (Ok(a2), Ok(b2)) => {
            let s1 = stats.clone();
            let act = activity.clone();
            let t = thread::spawn(move || copy_dir(a2, b2, chunk, s1, act));
            copy_dir(b, a, chunk, stats.clone(), activity);
            let _ = t.join();
        }
        _ => {
            // Clone failure: fall back to one direction only (rare;
            // keeps the relay from wedging).
            copy_dir(a, b, chunk, stats.clone(), activity);
        }
    }
    stats.snapshot().relayed_bytes - before
}

/// Spawn the pump on background threads and return immediately.
pub fn pump_detached(a: TcpStream, b: TcpStream, chunk: usize, stats: Arc<ProxyStats>) {
    thread::spawn(move || {
        pump(a, b, chunk, stats);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// Build a connected (client, server-side) socket pair on loopback.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        (c, s)
    }

    #[test]
    fn pump_bridges_both_directions() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 1024, stats.clone());

        left_app.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        right_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        right_app.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        left_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");

        // Closing one side propagates EOF to the other.
        drop(left_app);
        let mut rest = Vec::new();
        right_app.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert!(stats.snapshot().relayed_bytes >= 9);
    }

    #[test]
    fn pump_moves_bulk_data_intact() {
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let stats = Arc::new(ProxyStats::default());
        pump_detached(left_relay, right_relay, 512, stats.clone());

        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        let data2 = data.clone();
        let w = thread::spawn(move || {
            left_app.write_all(&data2).unwrap();
            drop(left_app); // EOF so the reader terminates
        });
        let mut got = Vec::new();
        right_app.read_to_end(&mut got).unwrap();
        w.join().unwrap();
        assert_eq!(got, data);
        assert_eq!(stats.snapshot().relayed_bytes, 100_000);
    }
}
