//! The inner server: runs *inside* the firewall and completes passive
//! relays. It listens on `nxport` — the one inbound port the paper's
//! deny-based policy opens, bound privileged so only root can
//! impersonate it — and, for each `RelayReq` from the outer server,
//! dials the registered client on the LAN and bridges the streams
//! (Fig. 4 steps 4-5).

use crate::protocol::Msg;
use crate::pump::{pump_detached, DEFAULT_CHUNK};
use crate::stats::{ProxySnapshot, ProxyStats};
use firewall::vnet::VNet;
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Inner server configuration.
#[derive(Debug, Clone)]
pub struct InnerConfig {
    /// Logical host the server runs on (inside the firewall).
    pub host: String,
    /// The relay port (the firewall hole). Defaults to
    /// [`firewall::NXPORT`].
    pub nxport: u16,
    pub chunk: usize,
}

impl InnerConfig {
    pub fn new(host: impl Into<String>) -> Self {
        InnerConfig {
            host: host.into(),
            nxport: firewall::NXPORT,
            chunk: DEFAULT_CHUNK,
        }
    }
}

/// A running inner server. Dropping the handle shuts it down.
pub struct InnerServer {
    cfg: InnerConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl InnerServer {
    pub fn start(net: VNet, cfg: InnerConfig) -> io::Result<InnerServer> {
        let listener = net.bind(&cfg.host, cfg.nxport)?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ProxyStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let t_stats = stats.clone();
        let t_shutdown = shutdown.clone();
        let t_cfg = cfg.clone();
        let accept_thread = thread::spawn(move || {
            let listener = listener;
            while !t_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let net = net.clone();
                        let cfg = t_cfg.clone();
                        let stats = t_stats.clone();
                        thread::spawn(move || handle_relay(net, cfg, stats, stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(InnerServer {
            cfg,
            stats,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn stats(&self) -> ProxySnapshot {
        self.stats.snapshot()
    }

    /// Full metric snapshot (counters + service-time histograms).
    pub fn obs_snapshot(&self) -> wacs_obs::RegistrySnapshot {
        self.stats.registry().snapshot()
    }

    /// Logical address of the relay port (what the outer server dials).
    pub fn nxport_addr(&self) -> (String, u16) {
        (self.cfg.host.clone(), self.cfg.nxport)
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for InnerServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_relay(net: VNet, cfg: InnerConfig, stats: Arc<ProxyStats>, mut from_outer: TcpStream) {
    let started = Instant::now();
    match Msg::read_from(&mut from_outer) {
        Ok(Msg::RelayReq { host, port }) => match net.dial(&cfg.host, &host, port) {
            Ok(client) => {
                if (Msg::RelayRep { ok: true })
                    .write_to(&mut from_outer)
                    .is_ok()
                {
                    stats.relays_ok.inc();
                    stats
                        .relay_bridge_ns
                        .record(started.elapsed().as_nanos() as u64);
                    pump_detached(from_outer, client, cfg.chunk, stats);
                }
            }
            Err(_) => {
                stats.relays_failed.inc();
                stats
                    .relay_bridge_ns
                    .record(started.elapsed().as_nanos() as u64);
                let _ = Msg::RelayRep { ok: false }.write_to(&mut from_outer);
            }
        },
        _ => { /* protocol error: drop */ }
    }
}
