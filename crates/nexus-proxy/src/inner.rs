//! The inner server: runs *inside* the firewall and completes passive
//! relays. It listens on `nxport` — the one inbound port the paper's
//! deny-based policy opens, bound privileged so only root can
//! impersonate it — and, for each `RelayReq` from the outer server,
//! dials the registered client on the LAN and bridges the streams
//! (Fig. 4 steps 4-5).
//!
//! Liveness layer (DESIGN.md §6b): a connection whose first frame is
//! `Ping`, `BindSync` or `ShardSync` is a *control session* from an
//! outer server — the inner server answers pings with pongs and
//! mirrors `BindSync` into its authorized-endpoint table. With
//! `require_registration` on, `RelayReq` for an endpoint absent from
//! that table is refused, which hardens the nxport hole (a restarted
//! inner server relays nothing until the outer server re-syncs its
//! bind table).
//!
//! Fleet layer (DESIGN.md §6d): the authorization table is *sliced per
//! shard*. A session that opens with `ShardSync { sender, .. }` owns
//! the slice named by its control endpoint, and its `BindSync` frames
//! replace only that slice — with one shared set, N outer shards would
//! take turns clobbering each other's registrations. Sessions that
//! never announce an identity (single-outer deployments) share the
//! legacy solo slice, preserving the pre-fleet behaviour exactly.

use crate::hook::{interpose, DialHook, DialLeg};
use crate::outer::PumpMode;
use crate::pool::{BufferPool, PoolConfig};
use crate::protocol::Msg;
use crate::pump::{pump_pooled, RelayActivity, DEFAULT_CHUNK};
use crate::reactor::{PumpReactor, ReactorConfig};
use crate::shard::ShardStats;
use crate::stats::{ProxySnapshot, ProxyStats};
use firewall::vnet::VNet;
use std::collections::{HashMap, HashSet};
use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};
use wacs_sync::OrderedMutex;

/// Inner server configuration.
#[derive(Debug, Clone)]
pub struct InnerConfig {
    /// Logical host the server runs on (inside the firewall).
    pub host: String,
    /// The relay port (the firewall hole). Defaults to
    /// [`firewall::NXPORT`].
    pub nxport: u16,
    pub chunk: usize,
    /// Refuse `RelayReq` for endpoints that were never announced via
    /// `BindSync`. Off by default (pre-liveness behaviour).
    pub require_registration: bool,
    /// A control session silent for longer than this is abandoned (the
    /// outer server pings well inside it while alive).
    pub control_timeout: Duration,
    /// Relay data plane: thread-pair (default, compatibility) or the
    /// multiplexed reactor — the same choice the outer server offers.
    pub pump_mode: PumpMode,
    /// Reactor tuning; used when `pump_mode` is [`PumpMode::Reactor`].
    pub reactor: ReactorConfig,
    /// Optional socket-level interposer on the inner→client relay
    /// dials. `None` — the default — leaves every dial untouched
    /// (DESIGN.md §6f).
    pub dial_hook: Option<DialHook>,
}

impl InnerConfig {
    pub fn new(host: impl Into<String>) -> Self {
        InnerConfig {
            host: host.into(),
            nxport: firewall::NXPORT,
            chunk: DEFAULT_CHUNK,
            require_registration: false,
            control_timeout: Duration::from_secs(5),
            pump_mode: PumpMode::default(),
            reactor: ReactorConfig::default(),
            dial_hook: None,
        }
    }

    pub fn with_registration_required(mut self) -> Self {
        self.require_registration = true;
        self
    }

    pub fn with_control_timeout(mut self, t: Duration) -> Self {
        self.control_timeout = t;
        self
    }

    pub fn with_pump_mode(mut self, mode: PumpMode) -> Self {
        self.pump_mode = mode;
        self
    }

    pub fn with_reactor_config(mut self, r: ReactorConfig) -> Self {
        self.reactor = r;
        self
    }

    /// Install a socket-level interposer on inner→client dials (chaos
    /// testing; see `wacs-chaos`).
    pub fn with_dial_hook(mut self, hook: DialHook) -> Self {
        self.dial_hook = Some(hook);
        self
    }
}

/// Slice name for sessions that never announce a shard identity.
const SOLO_SLICE: &str = "solo";

fn slice_key(host: &str, port: u16) -> String {
    format!("{host}:{port}")
}

/// The sliced authorization table plus the installed fleet view.
#[derive(Default)]
struct AuthTable {
    /// Shard control endpoint (`host:port`, or [`SOLO_SLICE`]) → the
    /// client private endpoints that shard last announced.
    slices: HashMap<String, HashSet<(String, u16)>>,
    /// Highest shard-map generation installed so far (0 = none).
    fleet_gen: u64,
    /// Members of that map (control endpoints, fleet order).
    fleet: Vec<(String, u16)>,
}

impl AuthTable {
    fn contains(&self, ep: &(String, u16)) -> bool {
        self.slices.values().any(|s| s.contains(ep))
    }
}

/// A running inner server. Dropping the handle shuts it down.
pub struct InnerServer {
    cfg: InnerConfig,
    stats: Arc<ProxyStats>,
    shutdown: Arc<AtomicBool>,
    authorized: Arc<OrderedMutex<AuthTable>>,
    reactor: Option<Arc<PumpReactor>>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl InnerServer {
    pub fn start(net: VNet, cfg: InnerConfig) -> io::Result<InnerServer> {
        let listener = net.bind(&cfg.host, cfg.nxport)?;
        listener.set_nonblocking(true)?;
        let stats = Arc::new(ProxyStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let authorized = Arc::new(OrderedMutex::new(
            "nexus.inner.authorized",
            AuthTable::default(),
        ));
        // Same staging-pool/data-plane arrangement as the outer server:
        // one pool for every pump, reactor spun up only when selected.
        let pool = BufferPool::with_counters(
            PoolConfig {
                seg_bytes: cfg.chunk.max(PoolConfig::default().seg_bytes),
                ..PoolConfig::default()
            },
            stats.pool_hits.clone(),
            stats.pool_misses.clone(),
        );
        let reactor = match cfg.pump_mode {
            PumpMode::ThreadPair => None,
            PumpMode::Reactor => Some(PumpReactor::start(cfg.reactor, stats.clone(), pool.clone())),
        };
        let ctx = InnerCtx {
            net,
            cfg: cfg.clone(),
            stats: stats.clone(),
            shard_stats: Arc::new(ShardStats::in_registry(stats.registry())),
            authorized: authorized.clone(),
            shutdown: shutdown.clone(),
            pool,
            reactor: reactor.clone(),
        };
        let t_shutdown = shutdown.clone();
        let accept_thread = thread::spawn(move || {
            let listener = listener;
            while !t_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        let c = ctx.clone();
                        thread::spawn(move || c.handle(stream));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(1)); // lint:allow(bare-sleep) — nonblocking accept poll.
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(InnerServer {
            cfg,
            stats,
            shutdown,
            authorized,
            reactor,
            accept_thread: Some(accept_thread),
        })
    }

    pub fn stats(&self) -> ProxySnapshot {
        self.stats.snapshot()
    }

    /// Full metric snapshot (counters + service-time histograms).
    pub fn obs_snapshot(&self) -> wacs_obs::RegistrySnapshot {
        self.stats.registry().snapshot()
    }

    /// Logical address of the relay port (what the outer server dials).
    pub fn nxport_addr(&self) -> (String, u16) {
        (self.cfg.host.clone(), self.cfg.nxport)
    }

    /// Endpoints currently announced via `BindSync`, the union over
    /// every shard's slice (sorted, deduplicated).
    pub fn authorized_endpoints(&self) -> Vec<(String, u16)> {
        let tbl = self.authorized.lock();
        let mut v: Vec<(String, u16)> = tbl.slices.values().flatten().cloned().collect();
        drop(tbl);
        v.sort();
        v.dedup();
        v
    }

    /// The installed fleet view: `(generation, members)`. Generation 0
    /// with an empty list means no shard ever announced a map.
    pub fn fleet_view(&self) -> (u64, Vec<(String, u16)>) {
        let tbl = self.authorized.lock();
        (tbl.fleet_gen, tbl.fleet.clone())
    }

    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

impl Drop for InnerServer {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Reactor last so in-flight relays keep moving while the accept
        // loop winds down; anything still live is aborted now.
        if let Some(r) = &self.reactor {
            r.shutdown();
        }
    }
}

/// State shared by handler threads.
#[derive(Clone)]
struct InnerCtx {
    net: VNet,
    cfg: InnerConfig,
    stats: Arc<ProxyStats>,
    shard_stats: Arc<ShardStats>,
    authorized: Arc<OrderedMutex<AuthTable>>,
    shutdown: Arc<AtomicBool>,
    /// Shared staging-buffer pool for every pump this server runs.
    pool: BufferPool,
    /// `Some` when `pump_mode` is [`PumpMode::Reactor`].
    reactor: Option<Arc<PumpReactor>>,
}

impl InnerCtx {
    /// First-frame dispatch: `RelayReq` starts a relay, `Ping`/
    /// `BindSync`/`ShardSync` starts a control session; anything else
    /// is dropped.
    fn handle(&self, mut from_outer: TcpStream) {
        match Msg::read_from(&mut from_outer) {
            Ok(Msg::RelayReq { host, port }) => self.handle_relay(from_outer, host, port),
            Ok(first @ (Msg::Ping { .. } | Msg::BindSync { .. } | Msg::ShardSync { .. })) => {
                self.control_session(from_outer, first);
            }
            _ => { /* protocol error: drop */ }
        }
    }

    fn handle_relay(&self, mut from_outer: TcpStream, host: String, port: u16) {
        let started = Instant::now();
        if self.cfg.require_registration && !self.authorized.lock().contains(&(host.clone(), port))
        {
            self.stats.relays_unauthorized.inc();
            self.stats.relays_failed.inc();
            self.stats
                .relay_bridge_ns
                .record(started.elapsed().as_nanos() as u64);
            let _ = Msg::RelayRep { ok: false }.write_to(&mut from_outer);
            return;
        }
        let dialed = interpose(
            self.cfg.dial_hook.as_ref(),
            DialLeg::InnerToClient,
            &self.cfg.host,
            &host,
            port,
            self.net.dial(&self.cfg.host, &host, port),
        );
        match dialed {
            Ok(client) => {
                if (Msg::RelayRep { ok: true })
                    .write_to(&mut from_outer)
                    .is_ok()
                {
                    self.stats.relays_ok.inc();
                    self.stats
                        .relay_bridge_ns
                        .record(started.elapsed().as_nanos() as u64);
                    match &self.reactor {
                        Some(reactor) => {
                            reactor.register(from_outer, client, RelayActivity::new(), || {});
                        }
                        None => {
                            let stats = self.stats.clone();
                            let chunk = self.cfg.chunk;
                            let pool = self.pool.clone();
                            thread::spawn(move || {
                                pump_pooled(from_outer, client, chunk, stats, None, &pool);
                            });
                        }
                    }
                }
            }
            Err(_) => {
                self.stats.relays_failed.inc();
                self.stats
                    .relay_bridge_ns
                    .record(started.elapsed().as_nanos() as u64);
                let _ = Msg::RelayRep { ok: false }.write_to(&mut from_outer);
            }
        }
    }

    /// Serve one outer-server control session until it closes or goes
    /// silent past the control timeout. Slices survive session death:
    /// a reconnecting outer server re-syncs its slice anyway, and in
    /// the interim known-good binds keep relaying.
    ///
    /// A fleet shard opens the session with `ShardSync { sender, .. }`,
    /// which (a) installs the membership if its generation is strictly
    /// newer than the held one, and (b) names the slice this session's
    /// `BindSync` frames replace. A session that never announces
    /// writes the [`SOLO_SLICE`] — single-outer deployments behave
    /// exactly as before the fleet layer existed.
    fn control_session(&self, mut s: TcpStream, first: Msg) {
        if s.set_read_timeout(Some(self.cfg.control_timeout)).is_err() {
            return;
        }
        let mut session_slice = SOLO_SLICE.to_string();
        let mut msg = first;
        loop {
            // A shut-down server must stop answering pings, or the
            // outer server would believe a dead peer alive forever.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match msg {
                Msg::Ping { seq } => {
                    self.stats.hb_pings.inc();
                    if (Msg::Pong { seq }).write_to(&mut s).is_err() {
                        return;
                    }
                    self.stats.hb_pongs.inc();
                }
                Msg::BindSync { binds } => {
                    self.authorized
                        .lock()
                        .slices
                        .insert(session_slice.clone(), binds.into_iter().collect());
                    self.stats.bind_syncs.inc();
                }
                Msg::ShardSync {
                    gen,
                    sender,
                    members,
                } => {
                    // Session identity first: even a stale map names
                    // its sender (control endpoints are stable across
                    // shard restarts, which is exactly what lets a
                    // replaced shard reclaim its old slice).
                    if let Some((h, p)) = members.get(sender as usize) {
                        session_slice = slice_key(h, *p);
                    }
                    let mut tbl = self.authorized.lock();
                    if gen > tbl.fleet_gen {
                        // Drop slices of shards no longer in the map:
                        // a removed shard's authorizations die with
                        // its membership, not with its TCP session.
                        let keep: HashSet<String> =
                            members.iter().map(|(h, p)| slice_key(h, *p)).collect();
                        tbl.slices
                            .retain(|k, _| k == SOLO_SLICE || keep.contains(k));
                        tbl.fleet_gen = gen;
                        tbl.fleet = members;
                        self.shard_stats.map_syncs.inc();
                        self.shard_stats.map_generation.set(gen as i64);
                    }
                }
                _ => return, // unexpected frame on a control session
            }
            msg = match Msg::read_from(&mut s) {
                Ok(m) => m,
                Err(_) => return, // EOF, timeout or protocol error
            };
        }
    }
}
