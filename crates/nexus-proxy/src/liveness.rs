//! Liveness, admission control and graceful degradation primitives.
//!
//! The relay is a long-lived user-level daemon that every WAN flow
//! funnels through; in production terms it must survive peer death,
//! half-open TCP connections and overload. This module holds the
//! *pure* state machines behind that survival story:
//!
//! * [`HeartbeatMonitor`] — dead-peer detection on the outer↔inner
//!   control channel (Ping/Pong frames, `protocol::Msg::Ping`);
//! * [`CircuitBreaker`] — WAN-leg dial protection: open after N
//!   consecutive failures, half-open probe after a cooldown, close on
//!   success;
//! * [`AdmissionGate`] — bounded admission: max total and per-peer
//!   relays, refusing with a typed `Busy` instead of silently
//!   accepting work the server cannot finish.
//!
//! Every machine is parameterized by a caller-supplied clock (`u64`
//! nanoseconds), so the real path drives them from `Instant` and the
//! simulator drives them from virtual time — the *same* transitions
//! are exercised deterministically by `tests/liveness.rs`.

use std::collections::HashMap;
use std::time::{Duration, Instant};
use wacs_sync::OrderedMutex;

/// Heartbeat tuning for the outer↔inner control channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeartbeatConfig {
    /// How often the outer server pings the inner server.
    pub interval: Duration,
    /// Silence longer than this declares the peer dead.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(250),
            timeout: Duration::from_secs(1),
        }
    }
}

/// Tracks liveness of one peer from observed traffic timestamps.
///
/// The owner feeds it `observe(now)` whenever proof of life arrives
/// (a Pong, or any frame) and polls `expired(now)` from its ping
/// timer; `next_seq()` numbers outgoing pings so stale pongs can be
/// told apart in traces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HeartbeatMonitor {
    cfg: HeartbeatConfig,
    last_seen: u64,
    seq: u32,
}

impl HeartbeatMonitor {
    pub fn new(cfg: HeartbeatConfig, now: u64) -> Self {
        HeartbeatMonitor {
            cfg,
            last_seen: now,
            seq: 0,
        }
    }

    pub fn config(&self) -> HeartbeatConfig {
        self.cfg
    }

    /// Record proof of life at `now`.
    pub fn observe(&mut self, now: u64) {
        self.last_seen = self.last_seen.max(now);
    }

    /// Timestamp of the latest observed proof of life (monotone: a
    /// late-arriving stale observation never moves it backwards —
    /// verified exhaustively by `wacs-check`).
    pub fn last_seen(&self) -> u64 {
        self.last_seen
    }

    /// Has the peer been silent longer than the timeout?
    pub fn expired(&self, now: u64) -> bool {
        now.saturating_sub(self.last_seen) > self.cfg.timeout.as_nanos() as u64
    }

    /// Sequence number for the next outgoing ping.
    pub fn next_seq(&mut self) -> u32 {
        self.seq = self.seq.wrapping_add(1);
        self.seq
    }
}

/// Circuit-breaker states, exported so observers can mirror them into
/// a gauge (`0` closed, `1` open, `2` half-open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Dials flow freely; consecutive failures are counted.
    Closed,
    /// Dials are refused locally until the cooldown elapses.
    Open,
    /// One probe dial is in flight; its outcome decides the state.
    HalfOpen,
}

impl BreakerState {
    /// Gauge encoding (0 closed / 1 open / 2 half-open).
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub threshold: u32,
    /// How long an open breaker refuses dials before probing.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(500),
        }
    }
}

/// A WAN-leg circuit breaker (pure; see [`SharedBreaker`] for the
/// thread-shared real-path wrapper).
///
/// Transitions: `Closed --N failures--> Open --cooldown--> HalfOpen`;
/// a half-open probe success closes the breaker, a failure re-opens
/// it (restarting the cooldown).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: u64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: 0,
        }
    }

    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Instant the breaker last tripped open (meaningful while the
    /// state is `Open`/`HalfOpen`); exposed for the model checker's
    /// cooldown invariant.
    pub fn opened_at(&self) -> u64 {
        self.opened_at
    }

    /// May a dial proceed at `now`? An open breaker whose cooldown has
    /// elapsed transitions to half-open and admits exactly one probe.
    pub fn allow(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if now.saturating_sub(self.opened_at) >= self.cfg.cooldown.as_nanos() as u64 {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
            // The probe is already in flight; hold further dials.
            BreakerState::HalfOpen => false,
        }
    }

    /// A dial succeeded. In `Closed` this resets the failure run; a
    /// `HalfOpen` probe success closes the breaker. A success arriving
    /// while `Open` is *stale* — the dial was admitted before the trip
    /// and its late outcome must not close the breaker without a
    /// half-open probe (found by the `wacs-check` breaker model:
    /// `[Dial, Dial, Fail, Fail → Open, stale Success → Closed]`; the
    /// shared breaker really does race like this, outer dialer vs
    /// client).
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => self.consecutive_failures = 0,
            BreakerState::HalfOpen => {
                self.state = BreakerState::Closed;
                self.consecutive_failures = 0;
            }
            BreakerState::Open => {}
        }
    }

    /// A dial failed at `now`. Returns `true` if this failure tripped
    /// (or re-tripped) the breaker open.
    pub fn on_failure(&mut self, now: u64) -> bool {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.cfg.threshold {
                    self.state = BreakerState::Open;
                    self.opened_at = now;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                // Failed probe: back to open, cooldown restarts.
                self.state = BreakerState::Open;
                self.opened_at = now;
                true
            }
            BreakerState::Open => false,
        }
    }
}

/// Admission refusal, distinguishing the bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionReject {
    /// The server-wide concurrent-relay cap is reached.
    Total { limit: u32 },
    /// This peer's concurrent-relay cap is reached.
    PerPeer { peer: String, limit: u32 },
    /// The server is draining for shutdown; no new admissions.
    Draining,
}

impl std::fmt::Display for AdmissionReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionReject::Total { limit } => {
                write!(f, "relay busy: server-wide limit {limit} reached")
            }
            AdmissionReject::PerPeer { peer, limit } => {
                write!(f, "relay busy: per-peer limit {limit} reached for {peer}")
            }
            AdmissionReject::Draining => write!(f, "relay draining: no new admissions"),
        }
    }
}

/// Admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum concurrent relays server-wide.
    pub max_total: u32,
    /// Maximum concurrent relays per peer key.
    pub max_per_peer: u32,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits {
            max_total: 256,
            max_per_peer: 64,
        }
    }
}

/// Bounded admission: a counting gate over (total, per-peer) relays.
/// Pure bookkeeping — the owner wraps it in a lock and must pair every
/// successful `try_admit` with exactly one `release`.
#[derive(Debug, Clone)]
pub struct AdmissionGate {
    limits: AdmissionLimits,
    total: u32,
    per_peer: HashMap<String, u32>,
    draining: bool,
}

impl AdmissionGate {
    pub fn new(limits: AdmissionLimits) -> Self {
        AdmissionGate {
            limits,
            total: 0,
            per_peer: HashMap::new(),
            draining: false,
        }
    }

    pub fn active(&self) -> u32 {
        self.total
    }

    /// Is the gate refusing all new work for shutdown?
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Refuse every future `try_admit` with [`AdmissionReject::Draining`].
    /// Releases still proceed so in-flight relays can finish.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Canonical snapshot of the bookkeeping — `(total, draining,
    /// sorted per-peer counts)` — used by the model checker to hash
    /// and compare states, and by its core invariant: `total` must
    /// always equal the sum of the per-peer counts.
    pub fn fingerprint(&self) -> (u32, bool, Vec<(String, u32)>) {
        let mut peers: Vec<(String, u32)> =
            self.per_peer.iter().map(|(k, v)| (k.clone(), *v)).collect();
        peers.sort();
        (self.total, self.draining, peers)
    }

    /// Admit one relay for `peer`, or refuse with the bound that hit.
    pub fn try_admit(&mut self, peer: &str) -> Result<(), AdmissionReject> {
        if self.draining {
            return Err(AdmissionReject::Draining);
        }
        if self.total >= self.limits.max_total {
            return Err(AdmissionReject::Total {
                limit: self.limits.max_total,
            });
        }
        let n = self.per_peer.get(peer).copied().unwrap_or(0);
        if n >= self.limits.max_per_peer {
            return Err(AdmissionReject::PerPeer {
                peer: peer.to_string(),
                limit: self.limits.max_per_peer,
            });
        }
        self.total += 1;
        self.per_peer.insert(peer.to_string(), n + 1);
        Ok(())
    }

    /// Release one previously admitted relay for `peer`. A release
    /// with no matching admission is a pure no-op: decrementing
    /// `total` for an unknown peer while other relays are active
    /// leaks capacity (`total` drifts below the per-peer sum and
    /// frees slots that are still occupied) — found by the
    /// `wacs-check` admission model via `[Admit("a"),
    /// Release("b")]` and pinned below.
    pub fn release(&mut self, peer: &str) {
        match self.per_peer.get_mut(peer) {
            Some(n) if *n > 1 => {
                *n -= 1;
                self.total = self.total.saturating_sub(1);
            }
            Some(_) => {
                self.per_peer.remove(peer);
                self.total = self.total.saturating_sub(1);
            }
            None => {}
        }
    }
}

/// Thread-shared wall-clock wrapper over [`CircuitBreaker`] for the
/// real-socket path, mirroring transitions into `wacs-obs`:
/// `<prefix>.breaker_state` gauge (0/1/2), `<prefix>.breaker_opens`
/// and `<prefix>.breaker_closes` counters.
#[derive(Clone)]
pub struct SharedBreaker {
    inner: std::sync::Arc<OrderedMutex<CircuitBreaker>>,
    epoch: Instant,
    obs: Option<BreakerObs>,
}

impl std::fmt::Debug for SharedBreaker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedBreaker")
            .field("state", &self.state())
            .finish()
    }
}

#[derive(Clone)]
struct BreakerObs {
    state: wacs_obs::Gauge,
    opens: wacs_obs::Counter,
    closes: wacs_obs::Counter,
}

impl SharedBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        SharedBreaker {
            inner: std::sync::Arc::new(OrderedMutex::new(
                "nexus.liveness.breaker",
                CircuitBreaker::new(cfg),
            )),
            epoch: Instant::now(),
            obs: None,
        }
    }

    /// Mirror state transitions under `<prefix>.*` in `registry`.
    #[must_use]
    pub fn with_obs(mut self, registry: &wacs_obs::Registry, prefix: &str) -> Self {
        self.obs = Some(BreakerObs {
            state: registry.gauge(&format!("{prefix}.breaker_state")),
            opens: registry.counter(&format!("{prefix}.breaker_opens")),
            closes: registry.counter(&format!("{prefix}.breaker_closes")),
        });
        self
    }

    fn now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn mirror(&self, state: BreakerState) {
        if let Some(o) = &self.obs {
            o.state.set(state.as_gauge());
        }
    }

    pub fn state(&self) -> BreakerState {
        self.inner.lock().state()
    }

    pub fn allow(&self) -> bool {
        let now = self.now();
        let mut b = self.inner.lock();
        let ok = b.allow(now);
        let st = b.state();
        drop(b);
        self.mirror(st);
        ok
    }

    pub fn on_success(&self) {
        let mut b = self.inner.lock();
        let before = b.state();
        b.on_success();
        let after = b.state();
        drop(b);
        self.mirror(after);
        // Count only genuine transitions to Closed (a stale success
        // against an Open breaker changes nothing).
        if before != BreakerState::Closed && after == BreakerState::Closed {
            if let Some(o) = &self.obs {
                o.closes.inc();
            }
        }
    }

    pub fn on_failure(&self) {
        let now = self.now();
        let mut b = self.inner.lock();
        let tripped = b.on_failure(now);
        let st = b.state();
        drop(b);
        self.mirror(st);
        if tripped {
            if let Some(o) = &self.obs {
                o.opens.inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn breaker(threshold: u32, cooldown_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
        })
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes_after_cooldown() {
        let mut b = breaker(3, 100);
        assert!(b.allow(0));
        assert!(!b.on_failure(0));
        assert!(!b.on_failure(MS));
        assert!(b.on_failure(2 * MS), "third failure must trip");
        assert_eq!(b.state(), BreakerState::Open);
        // Refused during cooldown.
        assert!(!b.allow(50 * MS));
        // Cooldown elapsed: exactly one probe.
        assert!(b.allow(103 * MS));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.allow(104 * MS), "only one probe at a time");
        // Probe success closes.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(105 * MS));
    }

    #[test]
    fn failed_probe_reopens_with_fresh_cooldown() {
        let mut b = breaker(1, 100);
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allow(101 * MS)); // half-open probe
        assert!(b.on_failure(101 * MS)); // probe fails: re-open
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(150 * MS), "cooldown restarted at 101ms");
        assert!(b.allow(202 * MS));
    }

    #[test]
    fn success_resets_the_failure_run() {
        let mut b = breaker(3, 100);
        b.on_failure(0);
        b.on_failure(0);
        b.on_success();
        b.on_failure(0);
        b.on_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "run was reset");
    }

    #[test]
    fn heartbeat_expiry_tracks_last_observation() {
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(10),
            timeout: Duration::from_millis(30),
        };
        let mut m = HeartbeatMonitor::new(cfg, 0);
        assert!(!m.expired(30 * MS));
        assert!(m.expired(31 * MS));
        m.observe(25 * MS);
        assert!(!m.expired(55 * MS));
        assert!(m.expired(56 * MS));
        // Observations never move liveness backwards.
        m.observe(10 * MS);
        assert!(!m.expired(55 * MS));
        assert_eq!(m.next_seq(), 1);
        assert_eq!(m.next_seq(), 2);
    }

    #[test]
    fn admission_enforces_both_bounds_and_releases() {
        let mut g = AdmissionGate::new(AdmissionLimits {
            max_total: 3,
            max_per_peer: 2,
        });
        assert!(g.try_admit("a").is_ok());
        assert!(g.try_admit("a").is_ok());
        assert_eq!(
            g.try_admit("a"),
            Err(AdmissionReject::PerPeer {
                peer: "a".into(),
                limit: 2
            })
        );
        assert!(g.try_admit("b").is_ok());
        assert_eq!(g.try_admit("c"), Err(AdmissionReject::Total { limit: 3 }));
        assert_eq!(g.active(), 3);
        g.release("a");
        assert!(g.try_admit("c").is_ok());
        g.release("c");
        g.release("b");
        g.release("a");
        assert_eq!(g.active(), 0);
        // Releasing an unknown peer is a no-op, not an underflow.
        g.release("ghost");
        assert_eq!(g.active(), 0);
    }

    /// Counterexample replay (wacs-check admission model): a ghost
    /// release while another peer is active must not leak capacity.
    /// Pre-fix, `release("b")` decremented `total` unconditionally,
    /// leaving `total = 0` with peer `a` still admitted — the per-peer
    /// sum and `total` diverged and a stuck peer could free slots it
    /// never held.
    #[test]
    fn ghost_release_with_active_peers_does_not_leak_capacity() {
        let mut g = AdmissionGate::new(AdmissionLimits {
            max_total: 1,
            max_per_peer: 1,
        });
        assert!(g.try_admit("a").is_ok());
        g.release("b"); // trace step 2: release of a never-admitted peer
        let (total, _, peers) = g.fingerprint();
        let sum: u32 = peers.iter().map(|(_, n)| n).sum();
        assert_eq!(total, sum, "total must track the per-peer sum");
        assert_eq!(g.active(), 1, "peer a is still admitted");
        // The leaked slot must not admit a second relay past the cap.
        assert_eq!(g.try_admit("c"), Err(AdmissionReject::Total { limit: 1 }));
    }

    /// Counterexample replay (wacs-check breaker model): a stale
    /// success from a dial admitted *before* the breaker tripped must
    /// not close it without a half-open probe. Pre-fix trace:
    /// allow, allow (two dials in flight), fail, fail (trips open at
    /// threshold 2), then the surviving dial reports success →
    /// breaker snapped Open→Closed with the WAN leg still dark.
    #[test]
    fn stale_success_does_not_close_an_open_breaker() {
        let mut b = breaker(2, 100);
        assert!(b.allow(0));
        assert!(b.allow(0)); // two concurrent dials admitted while Closed
        assert!(!b.on_failure(0));
        assert!(b.on_failure(0), "second failure trips the breaker");
        assert_eq!(b.state(), BreakerState::Open);
        b.on_success(); // the other dial's late success arrives
        assert_eq!(
            b.state(),
            BreakerState::Open,
            "only a half-open probe may close the breaker"
        );
        // The legitimate path still works: cooldown, probe, close.
        assert!(b.allow(101 * MS));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn drain_refuses_new_admissions_but_allows_releases() {
        let mut g = AdmissionGate::new(AdmissionLimits {
            max_total: 4,
            max_per_peer: 4,
        });
        assert!(g.try_admit("a").is_ok());
        g.begin_drain();
        assert!(g.draining());
        assert_eq!(g.try_admit("b"), Err(AdmissionReject::Draining));
        g.release("a");
        assert_eq!(g.active(), 0);
        assert_eq!(g.try_admit("a"), Err(AdmissionReject::Draining));
    }

    #[test]
    fn shared_breaker_mirrors_obs() {
        let reg = wacs_obs::Registry::new();
        let b = SharedBreaker::new(BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_millis(1),
        })
        .with_obs(&reg, "proxy.outer");
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("proxy.outer.breaker_opens"), Some(&1));
        assert_eq!(snap.gauges.get("proxy.outer.breaker_state"), Some(&1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.allow()); // half-open probe
        b.on_success();
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("proxy.outer.breaker_closes"), Some(&1));
        assert_eq!(snap.gauges.get("proxy.outer.breaker_state"), Some(&0));
    }
}
