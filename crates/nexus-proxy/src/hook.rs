//! Optional dial interposition — the seam the deterministic chaos
//! layer (`wacs-chaos`, DESIGN.md §6f) plugs into.
//!
//! Every real-socket connection in the stack is created by a handful
//! of `VNet::dial` sites in [`crate::client`], [`crate::outer`] and
//! [`crate::inner`]. Each such site is tagged with a [`DialLeg`] and
//! routed through [`interpose`]: when no hook is installed the dialed
//! stream is returned untouched (the production path is byte-for-byte
//! unchanged), and when one is installed the hook may wrap the stream
//! in an in-process fault proxy, or refuse the dial outright (a
//! connect blackhole).
//!
//! The hook deliberately operates on plain [`TcpStream`]s *after* the
//! firewall-guarded dial has succeeded: interposition cannot be used
//! to punch through `firewall::vnet` rules, only to degrade a leg the
//! firewall already admitted.

use std::fmt;
use std::io;
use std::net::TcpStream;
use std::sync::Arc;

/// Which leg of the relay path a dial belongs to. Fault profiles key
/// on this, so a chaos scenario can, say, throttle only the WAN
/// control leg while leaving intra-site data dials clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DialLeg {
    /// Client → outer-server control session (`ConnectReq`/`BindReq`).
    ClientCtrl,
    /// Client → rendezvous port or direct destination data dial.
    ClientData,
    /// Outer server → destination host (active-open data leg).
    OuterData,
    /// Outer server → inner server `RelayReq` (passive-open bridge).
    OuterToInner,
    /// Outer server → inner server heartbeat/control session.
    Heartbeat,
    /// Inner server → registered client (passive-relay completion).
    InnerToClient,
    /// One lane of a striped bulk transfer (`stripe` module).
    StripeLane,
}

impl DialLeg {
    /// Stable lower-snake name, used in metric keys and fault plans.
    pub fn name(self) -> &'static str {
        match self {
            DialLeg::ClientCtrl => "client_ctrl",
            DialLeg::ClientData => "client_data",
            DialLeg::OuterData => "outer_data",
            DialLeg::OuterToInner => "outer_to_inner",
            DialLeg::Heartbeat => "heartbeat",
            DialLeg::InnerToClient => "inner_to_client",
            DialLeg::StripeLane => "stripe_lane",
        }
    }

    /// All legs, in a stable order (profile tables iterate this).
    pub const ALL: &'static [DialLeg] = &[
        DialLeg::ClientCtrl,
        DialLeg::ClientData,
        DialLeg::OuterData,
        DialLeg::OuterToInner,
        DialLeg::Heartbeat,
        DialLeg::InnerToClient,
        DialLeg::StripeLane,
    ];
}

impl fmt::Display for DialLeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A socket-level interposer: receives every successfully dialed
/// stream together with its leg and logical endpoints, and returns
/// the stream the caller should actually use.
pub trait DialInterposer: Send + Sync {
    /// Wrap (or reject) one dialed stream. Returning `Err` makes the
    /// dial site behave exactly as if `VNet::dial` itself had failed,
    /// so breaker/failover machinery engages normally.
    fn wrap(
        &self,
        leg: DialLeg,
        from: &str,
        to: &str,
        port: u16,
        stream: TcpStream,
    ) -> io::Result<TcpStream>;
}

/// Shared, cloneable handle to an installed interposer.
#[derive(Clone)]
pub struct DialHook(Arc<dyn DialInterposer>);

impl DialHook {
    pub fn new(interposer: Arc<dyn DialInterposer>) -> DialHook {
        DialHook(interposer)
    }

    pub fn wrap(
        &self,
        leg: DialLeg,
        from: &str,
        to: &str,
        port: u16,
        stream: TcpStream,
    ) -> io::Result<TcpStream> {
        self.0.wrap(leg, from, to, port, stream)
    }
}

impl fmt::Debug for DialHook {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DialHook(..)")
    }
}

/// Route one dial result through an optional hook. With no hook this
/// is the identity on the `io::Result` — the production path when
/// chaos is off.
pub fn interpose(
    hook: Option<&DialHook>,
    leg: DialLeg,
    from: &str,
    to: &str,
    port: u16,
    dialed: io::Result<TcpStream>,
) -> io::Result<TcpStream> {
    match (hook, dialed) {
        (Some(h), Ok(s)) => h.wrap(leg, from, to, port, s),
        (_, r) => r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct Counting(AtomicUsize);

    impl DialInterposer for Counting {
        fn wrap(
            &self,
            _leg: DialLeg,
            _from: &str,
            _to: &str,
            _port: u16,
            stream: TcpStream,
        ) -> io::Result<TcpStream> {
            self.0.fetch_add(1, Ordering::SeqCst);
            Ok(stream)
        }
    }

    fn loopback_stream() -> TcpStream {
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let s = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let _ = l.accept().unwrap();
        s
    }

    #[test]
    fn no_hook_is_identity() {
        let s = loopback_stream();
        let addr = s.peer_addr().unwrap();
        let out = interpose(None, DialLeg::ClientCtrl, "a", "b", 1, Ok(s)).unwrap();
        assert_eq!(out.peer_addr().unwrap(), addr);
    }

    #[test]
    fn hook_sees_successful_dials_only() {
        let counting = Arc::new(Counting(AtomicUsize::new(0)));
        let hook = DialHook::new(counting.clone());
        let err: io::Result<TcpStream> = Err(io::Error::other("down"));
        assert!(interpose(Some(&hook), DialLeg::ClientData, "a", "b", 1, err).is_err());
        assert_eq!(counting.0.load(Ordering::SeqCst), 0);
        let s = loopback_stream();
        interpose(Some(&hook), DialLeg::ClientData, "a", "b", 1, Ok(s)).unwrap();
        assert_eq!(counting.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn leg_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = DialLeg::ALL.iter().map(|l| l.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DialLeg::ALL.len());
        assert_eq!(DialLeg::StripeLane.to_string(), "stripe_lane");
    }
}
