//! `nexus-proxy` — the Nexus Proxy: TCP relaying beyond a deny-based
//! firewall (the paper's §3).
//!
//! The proxy consists of two daemons:
//!
//! * the **outer server**, outside the firewall, which accepts relay
//!   requests from inside clients (outbound connections are allowed)
//!   and from remote peers (it is publicly reachable);
//! * the **inner server**, inside the firewall, listening on the single
//!   opened inbound port (`nxport`, privileged), which completes
//!   *passive* relays by dialing the registered client on the LAN.
//!
//! Unlike SOCKS, the scheme supports **passive opens**: `NXProxyBind`
//! publishes a rendezvous port on the outer server, and arriving peers
//! are bridged peer → outer → inner → client. That is the property the
//! paper needed and SOCKS lacks.
//!
//! Two interchangeable implementations live here:
//!
//! * **real sockets** ([`outer`], [`inner`], [`client`]) — daemons as
//!   threads over the firewall-guarded loopback [`firewall::vnet`];
//! * **virtual time** ([`sim`]) — the same protocol as `netsim` actors
//!   with an explicit relay cost model, used for the wide-area
//!   experiments.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub mod client;
pub mod hook;
pub mod inner;
pub mod liveness;
pub mod outer;
pub mod pool;
pub mod protocol;
pub mod pump;
pub mod reactor;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod stripe;

pub use client::{nx_proxy_bind, nx_proxy_connect, FleetRouter, NxListener, ProxyEnv};
pub use hook::{DialHook, DialInterposer, DialLeg};
pub use inner::{InnerConfig, InnerServer};
pub use liveness::{
    AdmissionGate, AdmissionLimits, AdmissionReject, BreakerConfig, BreakerState, CircuitBreaker,
    HeartbeatConfig, HeartbeatMonitor, SharedBreaker,
};
pub use outer::{FleetSpec, OuterConfig, OuterServer, PumpMode};
pub use pool::{BufferPool, PoolConfig};
pub use protocol::Msg;
pub use pump::{copy_loop, CopyEnd, RelayActivity};
pub use reactor::{PumpReactor, ReactorConfig};
pub use shard::{
    bind_key, member_tag, GenerationWitness, ShardMap, ShardRoute, ShardRouter, ShardStats,
};
pub use stats::{ProxySnapshot, ProxyStats};
pub use stripe::{
    interposed_lane_dial, send_striped, Accept, Reassembler, SendReport, StripeError, StripeFrame,
    StripePlan, StripeReceiver, StripeStats, DEFAULT_CHUNK_BYTES, MAX_CHUNK_BYTES, MAX_STRIPES,
    MAX_STRIPE_FRAME,
};
