//! The readiness-driven multiplexed relay pump.
//!
//! The thread-pair pump ([`crate::pump`]) spends two OS threads and
//! two blocking reads per relay; at thousands of concurrent users the
//! scheduler, not the network, becomes the bottleneck. The
//! [`PumpReactor`] inverts the model: **N relays per thread** over
//! nonblocking sockets, driven by readiness sweeps.
//!
//! ## Readiness without `poll(2)`
//!
//! The workspace is dependency-free and denies `unsafe_code`, so the
//! raw `poll(2)`/`epoll(7)` syscalls (libc FFI) are off the table.
//! Readiness is instead observed *speculatively*: every sweep attempts
//! a nonblocking read/write per direction and treats `WouldBlock` as
//! "not ready". An [`IdleBackoff`] keeps the sweep cheap when nothing
//! moves — yield-spinning first (latency), then parking with an
//! exponentially growing timeout capped in the low milliseconds
//! (throughput of everyone else). Parking uses `thread::park_timeout`
//! rather than a sleep, and [`PumpReactor::register`] unparks the
//! target worker: a fresh relay landing on a quiet reactor is swept
//! immediately instead of waiting out the park interval (the former
//! DESIGN.md §6c quiet-relay caveat). A kernel poller drop-in would
//! slot in behind the same `step` loop.
//!
//! ## Zero-alloc forwarding
//!
//! Each direction stages data in up to two pooled segments from the
//! shared [`BufferPool`] — no `vec![0u8; chunk]` per relay, no
//! allocation per chunk. Reads *coalesce*: many small segments batch
//! into one segment until the writer is ready; flushes use **vectored
//! I/O** (`write_vectored`) across both staged segments so one syscall
//! drains what many reads accumulated. Fully drained directions
//! release their segments back to the pool, so idle relays hold no
//! buffer memory at all — that is what lets one reactor thread carry
//! orders of magnitude more (mostly idle) relays than the 2-threads-
//! per-relay model.
//!
//! Per-pump metrics (segments, coalesced/vectored writes, pool
//! hits/misses, relays-per-reactor-thread gauges) land in the same
//! `wacs-obs` registry as the rest of [`ProxyStats`]; the idle-reaper
//! observes reactor relays through the shared [`RelayActivity`] clock
//! exactly as it does thread-pair pumps.

use crate::pool::BufferPool;
use crate::pump::RelayActivity;
use crate::stats::ProxyStats;
use std::io::{self, IoSlice, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;
use wacs_obs::Gauge;
use wacs_sync::OrderedMutex;

/// Reactor tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Reactor threads; relays are spread round-robin. One thread per
    /// core is plenty — each already multiplexes every relay it owns.
    pub threads: usize,
    /// Consecutive no-progress sweeps spent yield-spinning before the
    /// backoff starts sleeping (latency/CPU trade).
    pub idle_spin: u32,
    /// First parking sleep once spinning gives up; doubles per idle
    /// sweep up to [`ReactorConfig::park_max`].
    pub park_min: Duration,
    /// Ceiling for the parking sleep.
    pub park_max: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            threads: 1,
            idle_spin: 32,
            park_min: Duration::from_micros(100),
            park_max: Duration::from_millis(2),
        }
    }
}

/// Exponential idle backoff: yield while hot, park (doubling timeout)
/// while cold, reset on any progress. Parks are interruptible — an
/// `unpark` from `register` ends them early, and `park_timeout`'s
/// token semantics make the wakeup race-free: an unpark that lands
/// between the empty-queue check and the park makes the park return
/// immediately, so a registration can never be slept through.
struct IdleBackoff {
    cfg: ReactorConfig,
    idle_sweeps: u32,
}

impl IdleBackoff {
    fn new(cfg: ReactorConfig) -> Self {
        IdleBackoff {
            cfg,
            idle_sweeps: 0,
        }
    }

    fn progressed(&mut self) {
        self.idle_sweeps = 0;
    }

    fn idle(&mut self) {
        self.idle_sweeps = self.idle_sweeps.saturating_add(1);
        if self.idle_sweeps <= self.cfg.idle_spin {
            thread::yield_now();
        } else {
            let doublings = (self.idle_sweeps - self.cfg.idle_spin).min(16);
            let park = self
                .cfg
                .park_min
                .saturating_mul(1u32 << doublings.min(31))
                .min(self.cfg.park_max);
            thread::park_timeout(park.max(Duration::from_micros(1)));
        }
    }
}

/// Completion callback: runs exactly once when the relay leaves the
/// reactor (drained, failed, or aborted at shutdown). The outer server
/// uses it to GC its relay table and release the admission slot.
pub type DoneFn = Box<dyn FnOnce() + Send + 'static>;

struct NewRelay {
    a: TcpStream,
    b: TcpStream,
    activity: RelayActivity,
    done: DoneFn,
}

struct Shared {
    cfg: ReactorConfig,
    stats: Arc<ProxyStats>,
    pool: BufferPool,
    shutdown: AtomicBool,
    queues: Vec<OrderedMutex<Vec<NewRelay>>>,
    /// Worker `Thread` handles (index-aligned with `queues`), filled
    /// once by `start` so `register` can unpark the worker it fed.
    wakers: OrderedMutex<Vec<thread::Thread>>,
    thread_relays: Vec<Gauge>,
    // Round-robin placement cursor (an index, not a metric).
    next: AtomicUsize,
}

/// A running multiplexed pump. Dropping the handle aborts remaining
/// relays (running their completion callbacks) and joins the threads.
pub struct PumpReactor {
    shared: Arc<Shared>,
    workers: OrderedMutex<Vec<thread::JoinHandle<()>>>,
}

impl PumpReactor {
    /// Start `cfg.threads` reactor threads drawing buffers from `pool`
    /// and recording metrics into `stats`.
    pub fn start(cfg: ReactorConfig, stats: Arc<ProxyStats>, pool: BufferPool) -> Arc<PumpReactor> {
        let threads = cfg.threads.max(1);
        let queues = (0..threads)
            .map(|_| OrderedMutex::new("nexus.reactor.inject", Vec::new()))
            .collect();
        let thread_relays = (0..threads)
            .map(|i| {
                stats
                    .registry()
                    .gauge(&format!("proxy.reactor.thread{i}.relays"))
            })
            .collect();
        let shared = Arc::new(Shared {
            cfg,
            stats,
            pool,
            shutdown: AtomicBool::new(false),
            queues,
            wakers: OrderedMutex::new("nexus.reactor.wakers", Vec::new()),
            thread_relays,
            next: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(threads);
        for idx in 0..threads {
            let sh = shared.clone();
            handles.push(thread::spawn(move || worker_loop(&sh, idx)));
        }
        shared
            .wakers
            .lock()
            .extend(handles.iter().map(|h| h.thread().clone()));
        Arc::new(PumpReactor {
            shared,
            workers: OrderedMutex::new("nexus.reactor.workers", handles),
        })
    }

    /// Hand a relay pair to the reactor. Streams are switched to
    /// nonblocking mode; on failure (or after shutdown) the pair is
    /// reset and `done` runs immediately.
    pub fn register(
        &self,
        a: TcpStream,
        b: TcpStream,
        activity: RelayActivity,
        done: impl FnOnce() + Send + 'static,
    ) {
        let done: DoneFn = Box::new(done);
        let nonblocking_ok = a.set_nonblocking(true).is_ok() && b.set_nonblocking(true).is_ok();
        if !nonblocking_ok || self.shared.shutdown.load(Ordering::Relaxed) {
            let _ = a.shutdown(Shutdown::Both);
            let _ = b.shutdown(Shutdown::Both);
            done();
            return;
        }
        let idx = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        self.shared.queues[idx].lock().push(NewRelay {
            a,
            b,
            activity,
            done,
        });
        // Wake the worker: without this, a relay registered on a quiet
        // reactor pays the full park interval before its first byte
        // moves. Unpark's token means a worker about to park instead
        // returns immediately — no lost-wakeup window.
        if let Some(t) = self.shared.wakers.lock().get(idx) {
            t.unpark();
        }
    }

    /// Reactor threads configured (for relays-per-thread accounting).
    pub fn threads(&self) -> usize {
        self.shared.queues.len()
    }

    /// Relays currently registered across all reactor threads, plus
    /// any still queued for pickup. Chaos invariants assert this
    /// returns to zero after recovery (no leaked relay state).
    pub fn active(&self) -> usize {
        let live: i64 = self
            .shared
            .thread_relays
            .iter()
            .map(wacs_obs::Gauge::get)
            .sum();
        let queued: usize = (0..self.shared.queues.len())
            .map(|i| self.shared.queues[i].lock().len())
            .sum();
        live.max(0) as usize + queued
    }

    /// Stop the reactor: remaining relays are reset, their completion
    /// callbacks run, and the worker threads exit. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let mut workers = self.workers.lock();
        for t in workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for PumpReactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(sh: &Shared, idx: usize) {
    let mut relays: Vec<RelayState> = Vec::new();
    let mut backoff = IdleBackoff::new(sh.cfg);
    let mut announced: i64 = 0;
    loop {
        let shutting = sh.shutdown.load(Ordering::Relaxed);
        {
            let mut q = sh.queues[idx].lock();
            for nr in q.drain(..) {
                relays.push(RelayState::new(nr));
            }
        }
        if shutting {
            for mut r in relays.drain(..) {
                r.abort();
            }
            sh.thread_relays[idx].set(0);
            sh.stats.reactor_relays.add(-announced);
            return;
        }
        let mut progress = false;
        relays.retain_mut(|r| match r.step(sh) {
            Step::Done => {
                progress = true;
                false
            }
            Step::Progress => {
                progress = true;
                true
            }
            Step::Idle => true,
        });
        let count = relays.len() as i64;
        sh.thread_relays[idx].set(count);
        sh.stats.reactor_relays.add(count - announced);
        announced = count;
        if progress {
            backoff.progressed();
        } else {
            backoff.idle();
        }
    }
}

enum Step {
    Progress,
    Idle,
    Done,
}

/// One staged segment: a pooled buffer holding `off..len` pending
/// bytes. `buf == None` means released back to the pool (idle).
struct Seg {
    buf: Option<crate::pool::PooledBuf>,
    len: usize,
    off: usize,
}

impl Seg {
    fn empty() -> Self {
        Seg {
            buf: None,
            len: 0,
            off: 0,
        }
    }

    fn pending(&self) -> usize {
        self.len - self.off
    }

    fn reset(&mut self) {
        self.len = 0;
        self.off = 0;
    }

    fn release(&mut self) {
        self.buf = None;
        self.reset();
    }

    fn slice(&self) -> &[u8] {
        match &self.buf {
            Some(b) => &b[self.off..self.len],
            None => &[],
        }
    }
}

/// One copy direction: reads coalesce into `back`, flushes drain
/// `front` then `back` with a single vectored write.
struct Dir {
    front: Seg,
    back: Seg,
    eof: bool,
    shutdown_done: bool,
    reads_since_flush: u32,
}

impl Dir {
    fn new() -> Self {
        Dir {
            front: Seg::empty(),
            back: Seg::empty(),
            eof: false,
            shutdown_done: false,
            reads_since_flush: 0,
        }
    }

    fn pending(&self) -> usize {
        self.front.pending() + self.back.pending()
    }

    fn done(&self) -> bool {
        self.eof && self.pending() == 0 && self.shutdown_done
    }

    /// Account `n` flushed bytes across front then back; swap/reset so
    /// `front` always holds the oldest pending data.
    fn consume(&mut self, n: usize) {
        let take = n.min(self.front.pending());
        self.front.off += take;
        let rest = n - take;
        if rest > 0 {
            self.back.off += rest.min(self.back.pending());
        }
        if self.front.pending() == 0 {
            self.front.reset();
            std::mem::swap(&mut self.front, &mut self.back);
            if self.front.pending() == 0 {
                self.front.reset();
            }
        }
        if self.pending() == 0 {
            // Fully drained: hand both segments back so idle relays
            // hold no pool memory.
            self.front.release();
            self.back.release();
        }
    }
}

struct RelayState {
    a: TcpStream,
    b: TcpStream,
    ab: Dir,
    ba: Dir,
    activity: RelayActivity,
    done: Option<DoneFn>,
    failed: bool,
}

impl RelayState {
    fn new(nr: NewRelay) -> Self {
        RelayState {
            a: nr.a,
            b: nr.b,
            ab: Dir::new(),
            ba: Dir::new(),
            activity: nr.activity,
            done: Some(nr.done),
            failed: false,
        }
    }

    fn step(&mut self, sh: &Shared) -> Step {
        let mut progress = false;
        if !self.failed {
            match step_dir(&self.a, &self.b, &mut self.ab, sh, &self.activity).and_then(|p1| {
                step_dir(&self.b, &self.a, &mut self.ba, sh, &self.activity).map(|p2| p1 | p2)
            }) {
                Ok(p) => progress = p,
                Err(_) => self.failed = true,
            }
        }
        if self.failed {
            self.abort();
            return Step::Done;
        }
        if self.ab.done() && self.ba.done() {
            self.complete();
            return Step::Done;
        }
        if progress {
            Step::Progress
        } else {
            Step::Idle
        }
    }

    /// Hard stop: reset both ends (mirrors the thread-pair pump's hard-
    /// error semantics) and run the completion callback.
    fn abort(&mut self) {
        let _ = self.a.shutdown(Shutdown::Both);
        let _ = self.b.shutdown(Shutdown::Both);
        self.complete();
    }

    fn complete(&mut self) {
        if let Some(done) = self.done.take() {
            done();
        }
    }
}

/// Drive one direction: flush staged data, coalesce new reads, flush
/// again, propagate EOF as a half-close once drained.
fn step_dir(
    from: &TcpStream,
    to: &TcpStream,
    d: &mut Dir,
    sh: &Shared,
    activity: &RelayActivity,
) -> io::Result<bool> {
    let mut progress = flush(to, d, sh, activity)?;
    if !d.eof {
        loop {
            if d.back.buf.is_none() {
                d.back.buf = Some(sh.pool.get_seg());
            }
            let Some(buf) = d.back.buf.as_mut() else {
                break; // unreachable: just ensured
            };
            if d.back.len == buf.len() {
                break; // staging full: backpressure until a flush lands
            }
            let mut reader = from;
            let read_at = d.back.len;
            match reader.read(&mut buf[read_at..]) {
                Ok(0) => {
                    d.eof = true;
                    break;
                }
                Ok(n) => {
                    d.back.len += n;
                    d.reads_since_flush = d.reads_since_flush.saturating_add(1);
                    sh.stats.pump_segments.inc();
                    activity.touch();
                    progress = true;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        progress |= flush(to, d, sh, activity)?;
    }
    if d.eof && d.pending() == 0 && !d.shutdown_done {
        // Clean EOF propagates as a half-close: the reverse direction
        // may still carry a reply.
        let _ = to.shutdown(Shutdown::Write);
        d.shutdown_done = true;
        progress = true;
    }
    Ok(progress)
}

/// Drain pending staged bytes into `to` with vectored writes. Returns
/// whether any bytes moved; `WouldBlock` simply stops the flush.
fn flush(to: &TcpStream, d: &mut Dir, sh: &Shared, activity: &RelayActivity) -> io::Result<bool> {
    let mut progress = false;
    while d.pending() > 0 {
        let (front, back) = (d.front.slice(), d.back.slice());
        let spans_both = !front.is_empty() && !back.is_empty();
        let slices = [IoSlice::new(front), IoSlice::new(back)];
        let mut writer = to;
        let t0 = std::time::Instant::now();
        match writer.write_vectored(&slices) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "relay peer stopped accepting bytes",
                ))
            }
            Ok(n) => {
                sh.stats.add_bytes(n as u64);
                sh.stats
                    .pump_segment_ns
                    .record(t0.elapsed().as_nanos() as u64);
                if spans_both {
                    sh.stats.pump_vectored_writes.inc();
                }
                if d.reads_since_flush > 1 {
                    sh.stats.pump_coalesced_writes.inc();
                }
                d.reads_since_flush = 0;
                activity.touch();
                d.consume(n);
                progress = true;
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(progress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    fn socket_pair() -> (TcpStream, TcpStream) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let c = TcpStream::connect(addr).unwrap();
        let (s, _) = l.accept().unwrap();
        (c, s)
    }

    fn reactor(stats: &Arc<ProxyStats>) -> Arc<PumpReactor> {
        let pool = BufferPool::with_counters(
            PoolConfig {
                seg_bytes: 4096,
                max_retained: 16,
            },
            stats.pool_hits.clone(),
            stats.pool_misses.clone(),
        );
        PumpReactor::start(ReactorConfig::default(), stats.clone(), pool)
    }

    #[test]
    fn reactor_bridges_both_directions_and_completes() {
        let stats = Arc::new(ProxyStats::default());
        let r = reactor(&stats);
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        r.register(left_relay, right_relay, RelayActivity::new(), move || {
            done2.store(true, Ordering::Relaxed);
        });

        left_app.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        right_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        right_app.write_all(b"pong!").unwrap();
        let mut buf = [0u8; 5];
        left_app.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong!");

        drop(left_app);
        let mut rest = Vec::new();
        right_app.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        drop(right_app);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !done.load(Ordering::Relaxed) {
            assert!(
                std::time::Instant::now() < deadline,
                "completion callback never ran"
            );
            thread::sleep(Duration::from_millis(1));
        }
        assert!(stats.snapshot().relayed_bytes >= 9);
    }

    #[test]
    fn reactor_moves_bulk_data_intact_many_relays() {
        let stats = Arc::new(ProxyStats::default());
        let r = reactor(&stats);
        let mut apps = Vec::new();
        let data: Vec<u8> = (0..200_000u32).map(|i| (i % 249) as u8).collect();
        for _ in 0..4 {
            let (left_app, left_relay) = socket_pair();
            let (right_app, right_relay) = socket_pair();
            r.register(left_relay, right_relay, RelayActivity::new(), || {});
            apps.push((left_app, right_app));
        }
        let mut joins = Vec::new();
        for (mut l, mut rgt) in apps {
            let d = data.clone();
            joins.push(thread::spawn(move || {
                let w = thread::spawn(move || {
                    l.write_all(&d).unwrap();
                    drop(l);
                });
                let mut got = Vec::new();
                rgt.read_to_end(&mut got).unwrap();
                w.join().unwrap();
                got
            }));
        }
        for j in joins {
            assert_eq!(j.join().unwrap(), data);
        }
        assert_eq!(stats.snapshot().relayed_bytes, 4 * 200_000);
        // Four concurrent bulk relays on one reactor thread must have
        // recycled pool segments.
        assert!(stats.snapshot().pool_hits > 0);
    }

    #[test]
    fn half_close_lets_the_reply_direction_finish() {
        let stats = Arc::new(ProxyStats::default());
        let r = reactor(&stats);
        let (mut client, left_relay) = socket_pair();
        let (mut server, right_relay) = socket_pair();
        r.register(left_relay, right_relay, RelayActivity::new(), || {});

        // Client sends its full request and half-closes; the server
        // reads to EOF, then sends the reply back through the same
        // relay — which must still be alive in that direction.
        let request = vec![0x5Au8; 50_000];
        client.write_all(&request).unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        let mut got = Vec::new();
        server.read_to_end(&mut got).unwrap();
        assert_eq!(got, request);
        let reply = vec![0xC3u8; 30_000];
        server.write_all(&reply).unwrap();
        drop(server);
        let mut echoed = Vec::new();
        client.read_to_end(&mut echoed).unwrap();
        assert_eq!(echoed, reply);
    }

    /// Regression (DESIGN.md §6c quiet-relay caveat, fixed): a relay
    /// registered on a deeply parked reactor must move its first byte
    /// promptly because `register` unparks the worker. Before the fix
    /// the worker slept out its full park interval — with the 500 ms
    /// park below, first-byte latency was the remaining park time
    /// (hundreds of ms); with the unpark it is microseconds.
    #[test]
    fn quiet_reactor_first_byte_is_not_parked() {
        let stats = Arc::new(ProxyStats::default());
        let pool = BufferPool::with_counters(
            PoolConfig {
                seg_bytes: 4096,
                max_retained: 16,
            },
            stats.pool_hits.clone(),
            stats.pool_misses.clone(),
        );
        let cfg = ReactorConfig {
            threads: 1,
            idle_spin: 0,
            park_min: Duration::from_millis(500),
            park_max: Duration::from_millis(500),
        };
        let r = PumpReactor::start(cfg, stats, pool);
        // Let the worker go quiet: with idle_spin = 0 it is inside a
        // 500 ms park almost immediately.
        thread::sleep(Duration::from_millis(100));
        let (mut left_app, left_relay) = socket_pair();
        let (mut right_app, right_relay) = socket_pair();
        r.register(left_relay, right_relay, RelayActivity::new(), || {});
        let t0 = std::time::Instant::now();
        left_app.write_all(b"wake").unwrap();
        let mut buf = [0u8; 4];
        right_app.read_exact(&mut buf).unwrap();
        let first_byte = t0.elapsed();
        assert_eq!(&buf, b"wake");
        // Well under the ~400 ms of park remaining at registration
        // (generous for CI noise; the fixed path takes ~1 ms).
        assert!(
            first_byte < Duration::from_millis(250),
            "first byte took {first_byte:?}: register did not wake the parked worker"
        );
    }

    #[test]
    fn shutdown_aborts_relays_and_runs_callbacks() {
        let stats = Arc::new(ProxyStats::default());
        let r = reactor(&stats);
        let (_left_app, left_relay) = socket_pair();
        let (_right_app, right_relay) = socket_pair();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        r.register(left_relay, right_relay, RelayActivity::new(), move || {
            done2.store(true, Ordering::Relaxed);
        });
        r.shutdown();
        assert!(done.load(Ordering::Relaxed), "abort must run callbacks");
        assert_eq!(stats.reactor_relays.get(), 0);
    }
}
