//! Striped parallel bulk transfer over the sharded relay fleet, on
//! netsim's virtual clock (DESIGN.md §6e).
//!
//! One logical transfer is split into K stripe lanes; each lane binds
//! its own rendezvous through the outer-shard fleet, so the K bind
//! keys HRW-spread across shards and each stripe's bytes serialize
//! through a different relay service queue. These tests pin the
//! healthy path: exact reassembly, multi-shard spread, virtual-time
//! speedup from parallel lanes, and byte-identical same-seed
//! snapshots. The chaos variants (a stripe's flow or owning shard
//! killed mid-transfer) live in the workspace `fault_recovery` suite.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use netsim::prelude::*;
use nexus_proxy::sim::{
    stripe_cell, NxClient, RelayModel, SimOuterServer, SimProxyEnv, StripeCell, StripeSenderActor,
    StripeSinkActor,
};
use nexus_proxy::{StripePlan, StripeStats};
use std::sync::Arc;
use wacs_obs::Registry;

/// Control port of every sim shard (same port, distinct hosts).
const CTRL: u16 = 4097;

/// Deterministic payload bytes.
fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 131 + 17) % 251) as u8).collect()
}

struct RunOut {
    /// Registry snapshot JSON (for determinism checks).
    json: String,
    /// Reassembled `(tag, bytes)`, if the transfer completed.
    result: Option<(i32, Vec<u8>)>,
    /// Virtual nanos from sender start to completion.
    elapsed_ns: Option<u64>,
    /// Distinct shard hosts that served stripe binds.
    distinct_shards: usize,
    /// Lane re-dials after a mid-transfer flow death.
    failovers: u64,
    /// Typed reassembly errors (must stay empty).
    errors: usize,
    /// Byte-identical duplicate chunks the receiver absorbed.
    duplicates: u64,
}

/// One striped run: `stripes` lanes over a fleet of `shards` relay
/// shards, all on one LAN segment (the per-shard relay service queue
/// is the bottleneck, as in the committed `shard_scaling` scenario).
fn run_striped(seed: u64, shards: usize, stripes: u16, total_len: u64, chunk: u32) -> RunOut {
    let start_at = SimDuration::from_millis(300);
    let mut topo = Topology::new();
    let site = topo.add_site("bench", None);
    let sw = topo.add_switch("sw", site);
    let shard_hosts: Vec<NodeId> = (0..shards)
        .map(|i| topo.add_host(format!("shard{i}"), site))
        .collect();
    let rx_host = topo.add_host("rx", site);
    let tx_host = topo.add_host("tx", site);
    let lan = 6.5e6;
    for h in shard_hosts.iter().chain([&rx_host, &tx_host]) {
        topo.add_link(*h, sw, SimDuration::from_micros(100), lan);
    }
    let members: Vec<(NodeId, u16)> = shard_hosts.iter().map(|h| (*h, CTRL)).collect();

    let registry = Registry::new();
    let stats = StripeStats::in_registry(&registry);
    let mut sim = Simulator::new(topo, NetConfig::default(), seed);
    for (i, host) in shard_hosts.iter().enumerate() {
        sim.spawn(
            *host,
            Box::new(
                SimOuterServer::new(CTRL, None, RelayModel::default())
                    .with_fleet(members.clone(), i)
                    .with_obs(&registry),
            ),
        );
    }
    let plan = StripePlan::new(total_len, stripes, chunk).unwrap();
    let data = Arc::new(payload(total_len as usize));
    let cell: StripeCell = stripe_cell(stripes);
    for stripe in 0..stripes {
        sim.spawn(
            rx_host,
            Box::new(
                StripeSinkActor::new(
                    NxClient::new(SimProxyEnv::direct())
                        .with_fleet(members.clone())
                        .with_bind_lane(stripe)
                        .with_obs(&registry),
                    stripe,
                    cell.clone(),
                )
                .with_stats(stats.clone()),
            ),
        );
        sim.spawn(
            tx_host,
            Box::new(
                StripeSenderActor::new(
                    NxClient::new(SimProxyEnv::direct()),
                    stripe,
                    cell.clone(),
                    data.clone(),
                    plan,
                    7,
                    start_at,
                )
                .with_stats(stats.clone()),
            ),
        );
    }
    sim.run_until(SimTime(SimDuration::from_secs(120).nanos()));

    let c = cell.lock();
    let mut served: Vec<NodeId> = c.advertised.iter().flatten().map(|(h, _)| *h).collect();
    served.sort_unstable();
    served.dedup();
    RunOut {
        json: registry.snapshot().to_json(),
        result: c.receiver.result(),
        elapsed_ns: c.done_at_ns.map(|t| t.saturating_sub(start_at.nanos())),
        distinct_shards: served.len(),
        failovers: c.failovers,
        errors: c.errors.len(),
        duplicates: c.receiver.duplicates(),
    }
}

const LEN: u64 = 256 * 1024;
const CHUNK: u32 = 16 * 1024;

/// Healthy path: K=4 lanes over 4 shards reassemble the payload
/// byte-identically, with no errors, no failovers, no duplicates.
#[test]
fn sim_striped_reassembly_is_exact() {
    let out = run_striped(0x51, 4, 4, LEN, CHUNK);
    let (tag, got) = out.result.expect("transfer did not complete");
    assert_eq!(tag, 0);
    assert_eq!(got, payload(LEN as usize));
    assert_eq!(out.errors, 0);
    assert_eq!(out.failovers, 0);
    assert_eq!(out.duplicates, 0);
    // Lane affinity spreads K lanes over K shards by construction.
    assert_eq!(out.distinct_shards, 4);
}

/// An uneven tail (total not a multiple of stripes × chunk) still
/// reassembles exactly — the short last chunk rides like any other.
#[test]
fn sim_uneven_tail_reassembles() {
    let len = LEN - 4321;
    let out = run_striped(0x52, 3, 3, len, CHUNK);
    let (_, got) = out.result.expect("transfer did not complete");
    assert_eq!(got, payload(len as usize));
    assert_eq!(out.errors, 0);
}

/// One stripe over one shard is the degenerate single-stream case.
#[test]
fn sim_single_stripe_works() {
    let out = run_striped(0x53, 1, 1, LEN, CHUNK);
    let (_, got) = out.result.expect("transfer did not complete");
    assert_eq!(got, payload(LEN as usize));
    assert_eq!(out.distinct_shards, 1);
}

/// The point of striping: with the per-shard relay queue as the
/// bottleneck, K=4 lanes over 4 shards finish the same payload at
/// least twice as fast (virtual time) as one lane over one shard.
#[test]
fn sim_four_stripes_beat_one_by_2x() {
    let one = run_striped(0x54, 1, 1, LEN, CHUNK);
    let four = run_striped(0x54, 4, 4, LEN, CHUNK);
    let t1 = one.elapsed_ns.expect("single-lane run incomplete");
    let t4 = four.elapsed_ns.expect("striped run incomplete");
    assert!(
        t1 >= 2 * t4,
        "expected ≥2x virtual-time speedup: single {t1} ns vs striped {t4} ns"
    );
}

/// Same seed ⇒ byte-identical registry snapshots and payloads.
#[test]
fn sim_striped_snapshots_are_deterministic() {
    let a = run_striped(0x55, 4, 4, LEN, CHUNK);
    let b = run_striped(0x55, 4, 4, LEN, CHUNK);
    assert_eq!(a.json, b.json);
    assert_eq!(a.result, b.result);
    assert_eq!(a.elapsed_ns, b.elapsed_ns);
}
