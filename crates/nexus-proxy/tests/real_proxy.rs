//! End-to-end tests of the real-socket Nexus Proxy over the
//! firewall-guarded virtual network — the loopback re-creation of the
//! paper's Figure 5 topology, with the deny-based policy actually
//! enforced on every dial.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
};
use std::io::{Read, Write};
use std::thread;

/// Figure 5 in miniature:
/// * site `rwcp` — deny-in/allow-out firewall with only the nxport
///   hole to `rwcp-inner`; hosts `rwcp-sun`, `compas0`, `rwcp-inner`.
/// * site `dmz` — open; host `rwcp-outer` (the outer server).
/// * site `etl` — open; host `etl-sun`.
struct Testbed {
    net: VNet,
    _outer: OuterServer,
    _inner: InnerServer,
}

fn testbed() -> Testbed {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    net.add_host("compas0", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    // Punch the single hole: outer → inner on nxport.
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));

    let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    Testbed {
        net,
        _outer: outer,
        _inner: inner,
    }
}

fn proxy_env() -> ProxyEnv {
    ProxyEnv::via("rwcp-outer", OUTER_PORT)
}

#[test]
fn firewall_premise_holds() {
    let tb = testbed();
    // Outbound from inside works...
    let l = tb.net.bind("etl-sun", 5001).unwrap();
    thread::spawn(move || {
        let _ = l.accept();
    });
    assert!(tb.net.dial("rwcp-sun", "etl-sun", 5001).is_ok());
    // ...but inbound to inside is dropped (this is the problem the
    // proxy exists to solve).
    let _l2 = tb.net.bind("rwcp-sun", 5002).unwrap();
    assert_eq!(
        tb.net.dial("etl-sun", "rwcp-sun", 5002).unwrap_err().kind(),
        std::io::ErrorKind::PermissionDenied
    );
}

#[test]
fn active_open_relays_outbound() {
    // Fig. 3: inside client reaches an outside server via ConnectReq.
    let tb = testbed();
    let l = tb.net.bind("etl-sun", 6000).unwrap();
    let srv = thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let mut buf = [0u8; 4];
        s.read_exact(&mut buf).unwrap();
        s.write_all(b"ack:").unwrap();
        s.write_all(&buf).unwrap();
    });
    let mut s = nx_proxy_connect(&tb.net, &proxy_env(), "rwcp-sun", ("etl-sun", 6000)).unwrap();
    s.write_all(b"ping").unwrap();
    let mut buf = [0u8; 8];
    s.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"ack:ping");
    srv.join().unwrap();
    assert_eq!(tb._outer.stats().connects_ok, 1);
}

#[test]
fn active_open_failure_reported() {
    let tb = testbed();
    let err = nx_proxy_connect(&tb.net, &proxy_env(), "rwcp-sun", ("etl-sun", 6999)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
    assert_eq!(tb._outer.stats().connects_failed, 1);
}

#[test]
fn passive_open_relays_inbound_through_inner() {
    // Fig. 4: an inside server becomes reachable from outside via the
    // rendezvous port, bridged peer → outer → inner → client.
    let tb = testbed();
    let listener = nx_proxy_bind(&tb.net, &proxy_env(), "rwcp-sun").unwrap();
    let (adv_host, adv_port) = listener.advertised.clone();
    assert_eq!(adv_host, "rwcp-outer"); // address names the proxy

    let srv = thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut buf = [0u8; 5];
        s.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        s.write_all(b"world").unwrap();
    });

    // The outside peer connects to the *advertised* address — plain
    // connect, as MPICH-G would after reading the startpoint address.
    let mut s = tb.net.dial("etl-sun", &adv_host, adv_port).unwrap();
    s.write_all(b"hello").unwrap();
    let mut buf = [0u8; 5];
    s.read_exact(&mut buf).unwrap();
    assert_eq!(&buf, b"world");
    srv.join().unwrap();
    assert_eq!(tb._outer.stats().relays_ok, 1);
    assert_eq!(tb._inner.stats().relays_ok, 1);
}

#[test]
fn inside_to_inside_through_both_servers() {
    // RWCP-Sun ↔ COMPaS in the paper's Table 2 "indirect" row: both
    // ends are inside the firewall, so traffic goes client → outer →
    // inner → server (two relay processes).
    let tb = testbed();
    let listener = nx_proxy_bind(&tb.net, &proxy_env(), "rwcp-sun").unwrap();
    let adv = listener.advertised.clone();
    let srv = thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut buf = vec![0u8; 65536];
        s.read_exact(&mut buf).unwrap();
        s.write_all(&buf).unwrap();
    });
    // compas0 connects via NXProxyConnect; the destination names the
    // outer server, so the client connects straight to the rendezvous.
    let mut s =
        nx_proxy_connect(&tb.net, &proxy_env(), "compas0", (adv.0.as_str(), adv.1)).unwrap();
    let data: Vec<u8> = (0..65536u32).map(|i| (i % 255) as u8).collect();
    s.write_all(&data).unwrap();
    let mut back = vec![0u8; 65536];
    s.read_exact(&mut back).unwrap();
    assert_eq!(back, data);
    srv.join().unwrap();
    // Both relay daemons moved the bytes (>= payload both ways). Byte
    // accounting lands *after* each write, so the pump thread may still
    // be bumping the counter when the app-level echo completes — poll.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        let outer = tb._outer.stats().relayed_bytes;
        let inner = tb._inner.stats().relayed_bytes;
        if outer >= 2 * 65536 && inner >= 2 * 65536 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "relayed_bytes stalled: outer={outer} inner={inner}"
        );
        thread::sleep(std::time::Duration::from_millis(2));
    }
}

#[test]
fn direct_mode_bypasses_proxy() {
    let tb = testbed();
    let env = ProxyEnv::direct();
    let listener = nx_proxy_bind(&tb.net, &env, "etl-sun").unwrap();
    let adv = listener.advertised.clone();
    assert_eq!(adv.0, "etl-sun"); // advertises itself, not the proxy
    let srv = thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut b = [0u8; 2];
        s.read_exact(&mut b).unwrap();
    });
    let mut s = nx_proxy_connect(&tb.net, &env, "rwcp-sun", (adv.0.as_str(), adv.1)).unwrap();
    s.write_all(b"ok").unwrap();
    srv.join().unwrap();
    assert_eq!(tb._outer.stats().connects_ok, 0);
}

#[test]
fn rendezvous_withdrawn_when_listener_drops() {
    let tb = testbed();
    let listener = nx_proxy_bind(&tb.net, &proxy_env(), "rwcp-sun").unwrap();
    let adv = listener.advertised.clone();
    assert_eq!(tb._outer.rendezvous_ports(), vec![adv.1]);
    drop(listener);
    // The control-connection EOF propagates asynchronously.
    for _ in 0..200 {
        if tb._outer.rendezvous_ports().is_empty() {
            break;
        }
        thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(tb._outer.rendezvous_ports().is_empty());
    // And connecting to the old rendezvous now fails.
    assert!(tb.net.dial("etl-sun", &adv.0, adv.1).is_err());
}

#[test]
fn many_concurrent_relays() {
    let tb = testbed();
    let mut handles = Vec::new();
    for i in 0..8u16 {
        let net = tb.net.clone();
        let l = net.bind("etl-sun", 7100 + i).unwrap();
        handles.push(thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let mut b = [0u8; 4];
            s.read_exact(&mut b).unwrap();
            s.write_all(&b).unwrap();
        }));
    }
    let mut clients = Vec::new();
    for i in 0..8u16 {
        let net = tb.net.clone();
        clients.push(thread::spawn(move || {
            let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
            let mut s = nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", 7100 + i)).unwrap();
            let msg = i.to_be_bytes();
            s.write_all(&[msg[0], msg[1], 0xAA, 0x55]).unwrap();
            let mut b = [0u8; 4];
            s.read_exact(&mut b).unwrap();
            assert_eq!(b, [msg[0], msg[1], 0xAA, 0x55]);
        }));
    }
    for h in handles.into_iter().chain(clients) {
        h.join().unwrap();
    }
    assert_eq!(tb._outer.stats().connects_ok, 8);
}
