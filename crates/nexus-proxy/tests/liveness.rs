//! Liveness and graceful-degradation tests: dead-peer detection,
//! inner-server reconnect with bind re-registration, circuit-breaker
//! transitions, admission control, and idle-relay reaping — on both
//! the virtual-time actors (deterministic, byte-identical snapshots)
//! and the real socket path.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use netsim::prelude::*;
use nexus_proxy::sim::{
    NxClient, NxEvent, NxHandled, RelayModel, SimInnerServer, SimOuterServer, SimProxyEnv,
};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, AdmissionLimits, BreakerConfig, HeartbeatConfig, InnerConfig,
    InnerServer, OuterConfig, OuterServer, ProxyEnv,
};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;
use wacs_obs::Registry;
use wacs_sync::Mutex;

const CTRL_PORT: u16 = 5678;
const SIM_NXPORT: u16 = 911;

// ---------------------------------------------------------------------
// Virtual-time topology + minimal proxy-client actors.
// ---------------------------------------------------------------------

struct Net {
    topo: Topology,
    rwcp_sun: NodeId,
    inner_host: NodeId,
    outer_host: NodeId,
    etl_sun: NodeId,
}

fn build() -> Net {
    let mut topo = Topology::new();
    let rwcp = topo.add_site("rwcp", None);
    let dmz = topo.add_site("dmz", None);
    let etl = topo.add_site("etl", None);
    let rwcp_sun = topo.add_host("rwcp-sun", rwcp);
    let inner_host = topo.add_host("rwcp-inner", rwcp);
    let rwcp_sw = topo.add_switch("rwcp-sw", rwcp);
    let gw = topo.add_switch("rwcp-gw", dmz);
    let outer_host = topo.add_host("rwcp-outer", dmz);
    let etl_sw = topo.add_switch("etl-sw", etl);
    let etl_sun = topo.add_host("etl-sun", etl);
    let lan = 6.5e6;
    let us = SimDuration::from_micros;
    topo.add_link(rwcp_sun, rwcp_sw, us(100), lan);
    topo.add_link(inner_host, rwcp_sw, us(100), lan);
    topo.add_link(rwcp_sw, gw, us(200), lan);
    topo.add_link(outer_host, gw, us(100), lan);
    topo.add_link(gw, etl_sw, SimDuration::from_millis(3), 170e3);
    topo.add_link(etl_sw, etl_sun, us(100), lan);
    topo.sites[rwcp.0 as usize].policy = Some(Policy::typical_with_nxport(
        "rwcp",
        inner_host.0,
        SIM_NXPORT,
    ));
    Net {
        topo,
        rwcp_sun,
        inner_host,
        outer_host,
        etl_sun,
    }
}

type Shared = Arc<Mutex<SharedState>>;

#[derive(Default)]
struct SharedState {
    advertised: Option<(NodeId, u16)>,
    log: Vec<String>,
}

/// Echo server bound through the proxy.
struct EchoServer {
    nx: NxClient,
    shared: Shared,
}

impl EchoServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().advertised = Some(advertised);
                self.shared.lock().log.push("bound".into());
            }
            NxHandled::Event(NxEvent::Accepted { .. }) => {
                self.shared.lock().log.push("accepted".into());
            }
            NxHandled::Data(d) => {
                let _ = ctx.send_boxed(d.flow, d.size, d.payload);
            }
            _ => {}
        }
    }
}

impl Actor for EchoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().advertised = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Connects to the advertised address at a configured virtual time
/// (after the inner server's crash-and-restart) and ping-pongs once.
struct LatePing {
    nx: NxClient,
    shared: Shared,
    start_at: SimDuration,
}

const POLL: u64 = 1;

impl LatePing {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                ctx.send(flow, 64, ()).unwrap();
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                self.shared.lock().log.push("refused".into());
            }
            NxHandled::Data(_) => {
                self.shared
                    .lock()
                    .log
                    .push(format!("pong_at_ms {}", ctx.now().nanos() / 1_000_000));
            }
            _ => {}
        }
    }
}

impl Actor for LatePing {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == POLL {
            let adv = self.shared.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 7),
                None => ctx.set_timer(SimDuration::from_millis(10), POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// One full kill-the-inner run in virtual time; returns the final
/// registry snapshot JSON and the shared event log.
fn sim_crash_recovery_run(seed: u64) -> (String, Vec<String>) {
    let net = build();
    let registry = Registry::new();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), seed);
    let model = RelayModel::default();
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(250),
        timeout: Duration::from_secs(1),
    };
    let br = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(500),
    };
    sim.spawn(
        net.outer_host,
        Box::new(
            SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                .with_liveness(hb, br)
                .with_admission(AdmissionLimits::default())
                .with_obs(&registry),
        ),
    );
    let inner_id = sim.spawn(
        net.inner_host,
        Box::new(
            SimInnerServer::new(SIM_NXPORT, model)
                .with_registration_required()
                .with_obs(&registry),
        ),
    );
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(LatePing {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            start_at: SimDuration::from_secs(6),
        }),
    );
    // Kill the inner server at t=2s; bring a *fresh* one (empty
    // authorized table) back at t=4s.
    let restart_reg = registry.clone();
    sim.install_faults(FaultPlan::new(seed).crash_restart(
        inner_id,
        SimDuration::from_secs(2),
        SimDuration::from_secs(2),
        move || {
            Box::new(
                SimInnerServer::new(SIM_NXPORT, RelayModel::default())
                    .with_registration_required()
                    .with_obs(&restart_reg),
            )
        },
    ));
    sim.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    let log = shared.lock().log.clone();
    (registry.snapshot().to_json(), log)
}

/// The acceptance scenario: the outer server detects the dead inner
/// server within the heartbeat timeout, the restarted inner server
/// gets its bind table re-registered, and a subsequent relay
/// round-trip succeeds — with every liveness counter visible in the
/// shared registry snapshot.
#[test]
fn sim_outer_survives_inner_crash_and_reregisters_binds() {
    let (json, log) = sim_crash_recovery_run(11);
    // The bind survived and the post-restart connect round-tripped.
    assert!(log.contains(&"bound".to_string()), "{log:?}");
    assert!(
        log.iter().any(|l| l.starts_with("pong_at_ms")),
        "no post-restart round-trip: {log:?}"
    );
    assert!(!log.contains(&"refused".to_string()), "{log:?}");
    let snap: std::collections::BTreeMap<String, serde_free::Value> = parse_counters(&json);
    let counter = |name: &str| snap.get(name).map_or(0, |v| v.0);
    assert_eq!(counter("proxy.outer.inner_deaths"), 1, "{json}");
    assert_eq!(counter("proxy.outer.inner_reconnects"), 1, "{json}");
    // One sync on first connect, one on reconnect (at least).
    assert!(counter("proxy.outer.bind_syncs") >= 2, "{json}");
    assert!(counter("proxy.inner.bind_syncs") >= 2, "{json}");
    assert!(counter("proxy.outer.hb_pings") > 0, "{json}");
    assert!(counter("proxy.inner.hb_pongs") > 0, "{json}");
    // The fresh inner refused nothing: the re-sync beat the client.
    assert_eq!(counter("proxy.inner.relays_unauthorized"), 0, "{json}");
}

/// Same seed ⇒ byte-identical observability snapshots, crash and all.
#[test]
fn sim_crash_recovery_snapshots_are_deterministic() {
    let (a, log_a) = sim_crash_recovery_run(23);
    let (b, log_b) = sim_crash_recovery_run(23);
    assert_eq!(a, b);
    assert_eq!(log_a, log_b);
}

/// A long outage walks the breaker through its whole lifecycle:
/// closed → open (threshold dial failures) → half-open probes →
/// closed again once the inner server returns.
#[test]
fn sim_breaker_opens_and_closes_across_outage() {
    let net = build();
    let registry = Registry::new();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 5);
    let model = RelayModel::default();
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(250),
        timeout: Duration::from_secs(1),
    };
    let br = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(500),
    };
    sim.spawn(
        net.outer_host,
        Box::new(
            SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                .with_liveness(hb, br)
                .with_obs(&registry),
        ),
    );
    let inner_id = sim.spawn(
        net.inner_host,
        Box::new(SimInnerServer::new(SIM_NXPORT, model)),
    );
    sim.install_faults(FaultPlan::new(5).crash_restart(
        inner_id,
        SimDuration::from_secs(1),
        SimDuration::from_secs(4),
        || Box::new(SimInnerServer::new(SIM_NXPORT, RelayModel::default())),
    ));
    sim.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("proxy.outer.breaker_opens").copied() >= Some(1),
        "{}",
        snap.to_json()
    );
    assert!(
        snap.counters.get("proxy.outer.breaker_closes").copied() >= Some(1),
        "{}",
        snap.to_json()
    );
    // By the end the inner server is back: breaker closed, peer alive.
    assert_eq!(snap.gauges.get("proxy.outer.breaker_state"), Some(&0));
    assert_eq!(snap.gauges.get("proxy.outer.inner_alive"), Some(&1));
    assert_eq!(
        snap.counters.get("proxy.outer.inner_deaths"),
        Some(&1),
        "{}",
        snap.to_json()
    );
}

/// Tiny hand-rolled extraction of `"counters": {...}` u64 entries from
/// the snapshot JSON (no JSON dependency in the workspace).
mod serde_free {
    pub struct Value(pub u64);
}

fn parse_counters(json: &str) -> std::collections::BTreeMap<String, serde_free::Value> {
    let mut out = std::collections::BTreeMap::new();
    let Some(start) = json.find("\"counters\":{") else {
        return out;
    };
    let rest = &json[start + "\"counters\":{".len()..];
    let Some(end) = rest.find('}') else {
        return out;
    };
    for pair in rest[..end].split(',') {
        if let Some((k, v)) = pair.split_once(':') {
            let key = k.trim().trim_matches('"').to_string();
            if let Ok(n) = v.trim().parse::<u64>() {
                out.insert(key, serde_free::Value(n));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Real socket path.
// ---------------------------------------------------------------------

struct RealWorld {
    net: VNet,
}

fn real_world() -> RealWorld {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    RealWorld { net }
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = std::time::Instant::now() + deadline;
    while !cond() {
        assert!(std::time::Instant::now() < end, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance scenario on real sockets: kill the inner server, the
/// outer server's heartbeat detects the death within the timeout; a
/// restarted inner server (which refuses unregistered relays) gets the
/// live bind re-registered and a relay round-trip then succeeds.
#[test]
fn real_outer_detects_dead_inner_and_reregisters_binds() {
    let w = real_world();
    let inner = InnerServer::start(
        w.net.clone(),
        InnerConfig::new("rwcp-inner").with_registration_required(),
    )
    .unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_heartbeat(HeartbeatConfig {
                interval: Duration::from_millis(20),
                timeout: Duration::from_millis(120),
            })
            .with_breaker(BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(40),
            }),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Bind through the proxy; the heartbeat session syncs the bind to
    // the inner server's authorized table.
    let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let adv = listener.advertised.clone();
    wait_until("initial bind sync", Duration::from_secs(5), || {
        !inner.authorized_endpoints().is_empty()
    });

    // Kill the inner server; the outer notices within the hb timeout.
    drop(inner);
    wait_until("dead-peer detection", Duration::from_secs(5), || {
        outer.stats().inner_deaths >= 1
    });

    // Restart it: fresh process, empty authorized table. The outer's
    // reconnect must push the live bind back before relays can flow.
    let inner2 = InnerServer::start(
        w.net.clone(),
        InnerConfig::new("rwcp-inner").with_registration_required(),
    )
    .unwrap();
    wait_until(
        "reconnect + re-registration",
        Duration::from_secs(5),
        || outer.stats().inner_reconnects >= 1 && !inner2.authorized_endpoints().is_empty(),
    );

    // A post-recovery relay round-trip succeeds end to end.
    let srv = std::thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut b = [0u8; 5];
        s.read_exact(&mut b).unwrap();
        s.write_all(&b).unwrap();
        b
    });
    let mut peer = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
    peer.write_all(b"hello").unwrap();
    let mut echo = [0u8; 5];
    peer.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, b"hello");
    assert_eq!(&srv.join().unwrap(), b"hello");

    // Every liveness counter is visible in one obs snapshot.
    let json = outer.obs_snapshot().to_json();
    for key in [
        "proxy.inner_deaths",
        "proxy.inner_reconnects",
        "proxy.bind_syncs",
        "proxy.hb_pings",
        "proxy.breaker_opens",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    let snap = outer.stats();
    assert!(snap.inner_deaths >= 1 && snap.inner_reconnects >= 1);
}

/// Admission control: with a single relay slot the second concurrent
/// connect is refused with a typed `Busy` (surfaced as `WouldBlock`),
/// and the slot frees once the first relay tears down.
#[test]
fn real_admission_limit_returns_busy_and_releases() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_limits(AdmissionLimits {
                max_total: 1,
                max_per_peer: 1,
            }),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7100).unwrap();
    let held = Arc::new(Mutex::new(Vec::new()));
    let held2 = held.clone();
    let _acceptor = std::thread::spawn(move || {
        while let Ok((s, _)) = l.accept() {
            held2.lock().push(s);
        }
    });

    let first = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).unwrap();
    let err = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock, "{err}");
    assert!(outer.stats().busy_rejected >= 1);

    // Tear the first relay down; its admission slot must come back.
    drop(first);
    held.lock().clear();
    wait_until("slot release", Duration::from_secs(5), || {
        nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).is_ok()
    });
}

/// Hygiene: a relay with no traffic in `idle_timeout` is reaped and
/// the connection table drains back to zero.
#[test]
fn real_idle_relays_are_reaped() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_idle_timeout(Duration::from_millis(60)),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7200).unwrap();
    let _acceptor = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = l.accept() {
            held.push(s);
        }
    });
    let _idle = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7200)).unwrap();
    wait_until("idle relay present", Duration::from_secs(5), || {
        outer.active_relays() == 1
    });
    // Send nothing: the reaper must cut the pair loose.
    wait_until("idle reap", Duration::from_secs(5), || {
        outer.stats().idle_reaped >= 1 && outer.active_relays() == 0
    });
}

/// Graceful drain: shutdown with in-flight relays finishes the pumps
/// and reports an empty table.
#[test]
fn real_drain_finishes_in_flight_relays() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7300).unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let mut b = [0u8; 3];
        s.read_exact(&mut b).unwrap();
        b
    });
    let mut s = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7300)).unwrap();
    s.write_all(b"end").unwrap();
    assert_eq!(&srv.join().unwrap(), b"end");
    drop(s);
    assert!(outer.drain(Duration::from_secs(5)), "drain timed out");
    assert_eq!(outer.active_relays(), 0);
}
