//! Liveness and graceful-degradation tests: dead-peer detection,
//! inner-server reconnect with bind re-registration, circuit-breaker
//! transitions, admission control, and idle-relay reaping — on both
//! the virtual-time actors (deterministic, byte-identical snapshots)
//! and the real socket path.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use netsim::prelude::*;
use nexus_proxy::sim::{
    NxClient, NxEvent, NxHandled, RelayModel, SimInnerServer, SimOuterServer, SimProxyEnv,
};
use nexus_proxy::{
    bind_key, interposed_lane_dial, member_tag, nx_proxy_bind, nx_proxy_connect, send_striped,
    AdmissionLimits, BreakerConfig, DialLeg, FleetRouter, HeartbeatConfig, InnerConfig,
    InnerServer, Msg, OuterConfig, OuterServer, ProxyEnv, ShardMap, StripePlan, StripeReceiver,
    StripeStats,
};
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;
use wacs_chaos::{ChaosInterposer, ChaosProfile, FaultClass, FaultRule};
use wacs_obs::Registry;
use wacs_sync::Mutex;

const CTRL_PORT: u16 = 5678;
const SIM_NXPORT: u16 = 911;

// ---------------------------------------------------------------------
// Virtual-time topology + minimal proxy-client actors.
// ---------------------------------------------------------------------

struct Net {
    topo: Topology,
    rwcp_sun: NodeId,
    inner_host: NodeId,
    outer_host: NodeId,
    etl_sun: NodeId,
}

fn build() -> Net {
    let mut topo = Topology::new();
    let rwcp = topo.add_site("rwcp", None);
    let dmz = topo.add_site("dmz", None);
    let etl = topo.add_site("etl", None);
    let rwcp_sun = topo.add_host("rwcp-sun", rwcp);
    let inner_host = topo.add_host("rwcp-inner", rwcp);
    let rwcp_sw = topo.add_switch("rwcp-sw", rwcp);
    let gw = topo.add_switch("rwcp-gw", dmz);
    let outer_host = topo.add_host("rwcp-outer", dmz);
    let etl_sw = topo.add_switch("etl-sw", etl);
    let etl_sun = topo.add_host("etl-sun", etl);
    let lan = 6.5e6;
    let us = SimDuration::from_micros;
    topo.add_link(rwcp_sun, rwcp_sw, us(100), lan);
    topo.add_link(inner_host, rwcp_sw, us(100), lan);
    topo.add_link(rwcp_sw, gw, us(200), lan);
    topo.add_link(outer_host, gw, us(100), lan);
    topo.add_link(gw, etl_sw, SimDuration::from_millis(3), 170e3);
    topo.add_link(etl_sw, etl_sun, us(100), lan);
    topo.sites[rwcp.0 as usize].policy = Some(Policy::typical_with_nxport(
        "rwcp",
        inner_host.0,
        SIM_NXPORT,
    ));
    Net {
        topo,
        rwcp_sun,
        inner_host,
        outer_host,
        etl_sun,
    }
}

type Shared = Arc<Mutex<SharedState>>;

#[derive(Default)]
struct SharedState {
    advertised: Option<(NodeId, u16)>,
    log: Vec<String>,
}

/// Echo server bound through the proxy.
struct EchoServer {
    nx: NxClient,
    shared: Shared,
}

impl EchoServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().advertised = Some(advertised);
                self.shared.lock().log.push("bound".into());
            }
            NxHandled::Event(NxEvent::Accepted { .. }) => {
                self.shared.lock().log.push("accepted".into());
            }
            NxHandled::Data(d) => {
                let _ = ctx.send_boxed(d.flow, d.size, d.payload);
            }
            _ => {}
        }
    }
}

impl Actor for EchoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().advertised = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// Connects to the advertised address at a configured virtual time
/// (after the inner server's crash-and-restart) and ping-pongs once.
struct LatePing {
    nx: NxClient,
    shared: Shared,
    start_at: SimDuration,
}

const POLL: u64 = 1;

impl LatePing {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                ctx.send(flow, 64, ()).unwrap();
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                self.shared.lock().log.push("refused".into());
            }
            NxHandled::Data(_) => {
                self.shared
                    .lock()
                    .log
                    .push(format!("pong_at_ms {}", ctx.now().nanos() / 1_000_000));
            }
            _ => {}
        }
    }
}

impl Actor for LatePing {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == POLL {
            let adv = self.shared.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 7),
                None => ctx.set_timer(SimDuration::from_millis(10), POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// One full kill-the-inner run in virtual time; returns the final
/// registry snapshot JSON and the shared event log.
fn sim_crash_recovery_run(seed: u64) -> (String, Vec<String>) {
    let net = build();
    let registry = Registry::new();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), seed);
    let model = RelayModel::default();
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(250),
        timeout: Duration::from_secs(1),
    };
    let br = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(500),
    };
    sim.spawn(
        net.outer_host,
        Box::new(
            SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                .with_liveness(hb, br)
                .with_admission(AdmissionLimits::default())
                .with_obs(&registry),
        ),
    );
    let inner_id = sim.spawn(
        net.inner_host,
        Box::new(
            SimInnerServer::new(SIM_NXPORT, model)
                .with_registration_required()
                .with_obs(&registry),
        ),
    );
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(LatePing {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            start_at: SimDuration::from_secs(6),
        }),
    );
    // Kill the inner server at t=2s; bring a *fresh* one (empty
    // authorized table) back at t=4s.
    let restart_reg = registry.clone();
    sim.install_faults(FaultPlan::new(seed).crash_restart(
        inner_id,
        SimDuration::from_secs(2),
        SimDuration::from_secs(2),
        move || {
            Box::new(
                SimInnerServer::new(SIM_NXPORT, RelayModel::default())
                    .with_registration_required()
                    .with_obs(&restart_reg),
            )
        },
    ));
    sim.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    let log = shared.lock().log.clone();
    (registry.snapshot().to_json(), log)
}

/// The acceptance scenario: the outer server detects the dead inner
/// server within the heartbeat timeout, the restarted inner server
/// gets its bind table re-registered, and a subsequent relay
/// round-trip succeeds — with every liveness counter visible in the
/// shared registry snapshot.
#[test]
fn sim_outer_survives_inner_crash_and_reregisters_binds() {
    let (json, log) = sim_crash_recovery_run(11);
    // The bind survived and the post-restart connect round-tripped.
    assert!(log.contains(&"bound".to_string()), "{log:?}");
    assert!(
        log.iter().any(|l| l.starts_with("pong_at_ms")),
        "no post-restart round-trip: {log:?}"
    );
    assert!(!log.contains(&"refused".to_string()), "{log:?}");
    let snap: std::collections::BTreeMap<String, serde_free::Value> = parse_counters(&json);
    let counter = |name: &str| snap.get(name).map_or(0, |v| v.0);
    assert_eq!(counter("proxy.outer.inner_deaths"), 1, "{json}");
    assert_eq!(counter("proxy.outer.inner_reconnects"), 1, "{json}");
    // One sync on first connect, one on reconnect (at least).
    assert!(counter("proxy.outer.bind_syncs") >= 2, "{json}");
    assert!(counter("proxy.inner.bind_syncs") >= 2, "{json}");
    assert!(counter("proxy.outer.hb_pings") > 0, "{json}");
    assert!(counter("proxy.inner.hb_pongs") > 0, "{json}");
    // The fresh inner refused nothing: the re-sync beat the client.
    assert_eq!(counter("proxy.inner.relays_unauthorized"), 0, "{json}");
}

/// Same seed ⇒ byte-identical observability snapshots, crash and all.
#[test]
fn sim_crash_recovery_snapshots_are_deterministic() {
    let (a, log_a) = sim_crash_recovery_run(23);
    let (b, log_b) = sim_crash_recovery_run(23);
    assert_eq!(a, b);
    assert_eq!(log_a, log_b);
}

/// A long outage walks the breaker through its whole lifecycle:
/// closed → open (threshold dial failures) → half-open probes →
/// closed again once the inner server returns.
#[test]
fn sim_breaker_opens_and_closes_across_outage() {
    let net = build();
    let registry = Registry::new();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 5);
    let model = RelayModel::default();
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(250),
        timeout: Duration::from_secs(1),
    };
    let br = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(500),
    };
    sim.spawn(
        net.outer_host,
        Box::new(
            SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                .with_liveness(hb, br)
                .with_obs(&registry),
        ),
    );
    let inner_id = sim.spawn(
        net.inner_host,
        Box::new(SimInnerServer::new(SIM_NXPORT, model)),
    );
    sim.install_faults(FaultPlan::new(5).crash_restart(
        inner_id,
        SimDuration::from_secs(1),
        SimDuration::from_secs(4),
        || Box::new(SimInnerServer::new(SIM_NXPORT, RelayModel::default())),
    ));
    sim.run_until(SimTime(SimDuration::from_secs(10).nanos()));
    let snap = registry.snapshot();
    assert!(
        snap.counters.get("proxy.outer.breaker_opens").copied() >= Some(1),
        "{}",
        snap.to_json()
    );
    assert!(
        snap.counters.get("proxy.outer.breaker_closes").copied() >= Some(1),
        "{}",
        snap.to_json()
    );
    // By the end the inner server is back: breaker closed, peer alive.
    assert_eq!(snap.gauges.get("proxy.outer.breaker_state"), Some(&0));
    assert_eq!(snap.gauges.get("proxy.outer.inner_alive"), Some(&1));
    assert_eq!(
        snap.counters.get("proxy.outer.inner_deaths"),
        Some(&1),
        "{}",
        snap.to_json()
    );
}

/// Tiny hand-rolled extraction of `"counters": {...}` u64 entries from
/// the snapshot JSON (no JSON dependency in the workspace).
mod serde_free {
    pub struct Value(pub u64);
}

fn parse_counters(json: &str) -> std::collections::BTreeMap<String, serde_free::Value> {
    let mut out = std::collections::BTreeMap::new();
    let Some(start) = json.find("\"counters\":{") else {
        return out;
    };
    let rest = &json[start + "\"counters\":{".len()..];
    let Some(end) = rest.find('}') else {
        return out;
    };
    for pair in rest[..end].split(',') {
        if let Some((k, v)) = pair.split_once(':') {
            let key = k.trim().trim_matches('"').to_string();
            if let Ok(n) = v.trim().parse::<u64>() {
                out.insert(key, serde_free::Value(n));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Real socket path.
// ---------------------------------------------------------------------

struct RealWorld {
    net: VNet,
}

fn real_world() -> RealWorld {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    RealWorld { net }
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = std::time::Instant::now() + deadline;
    while !cond() {
        assert!(std::time::Instant::now() < end, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance scenario on real sockets: kill the inner server, the
/// outer server's heartbeat detects the death within the timeout; a
/// restarted inner server (which refuses unregistered relays) gets the
/// live bind re-registered and a relay round-trip then succeeds.
#[test]
fn real_outer_detects_dead_inner_and_reregisters_binds() {
    let w = real_world();
    let inner = InnerServer::start(
        w.net.clone(),
        InnerConfig::new("rwcp-inner").with_registration_required(),
    )
    .unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_heartbeat(HeartbeatConfig {
                interval: Duration::from_millis(20),
                timeout: Duration::from_millis(120),
            })
            .with_breaker(BreakerConfig {
                threshold: 2,
                cooldown: Duration::from_millis(40),
            }),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Bind through the proxy; the heartbeat session syncs the bind to
    // the inner server's authorized table.
    let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let adv = listener.advertised.clone();
    wait_until("initial bind sync", Duration::from_secs(5), || {
        !inner.authorized_endpoints().is_empty()
    });

    // Kill the inner server; the outer notices within the hb timeout.
    drop(inner);
    wait_until("dead-peer detection", Duration::from_secs(5), || {
        outer.stats().inner_deaths >= 1
    });

    // Restart it: fresh process, empty authorized table. The outer's
    // reconnect must push the live bind back before relays can flow.
    let inner2 = InnerServer::start(
        w.net.clone(),
        InnerConfig::new("rwcp-inner").with_registration_required(),
    )
    .unwrap();
    wait_until(
        "reconnect + re-registration",
        Duration::from_secs(5),
        || outer.stats().inner_reconnects >= 1 && !inner2.authorized_endpoints().is_empty(),
    );

    // A post-recovery relay round-trip succeeds end to end.
    let srv = std::thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut b = [0u8; 5];
        s.read_exact(&mut b).unwrap();
        s.write_all(&b).unwrap();
        b
    });
    let mut peer = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
    peer.write_all(b"hello").unwrap();
    let mut echo = [0u8; 5];
    peer.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, b"hello");
    assert_eq!(&srv.join().unwrap(), b"hello");

    // Every liveness counter is visible in one obs snapshot.
    let json = outer.obs_snapshot().to_json();
    for key in [
        "proxy.inner_deaths",
        "proxy.inner_reconnects",
        "proxy.bind_syncs",
        "proxy.hb_pings",
        "proxy.breaker_opens",
    ] {
        assert!(json.contains(key), "{key} missing from {json}");
    }
    let snap = outer.stats();
    assert!(snap.inner_deaths >= 1 && snap.inner_reconnects >= 1);
}

/// Admission control: with a single relay slot the second concurrent
/// connect is refused with a typed `Busy` (surfaced as `WouldBlock`),
/// and the slot frees once the first relay tears down.
#[test]
fn real_admission_limit_returns_busy_and_releases() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_limits(AdmissionLimits {
                max_total: 1,
                max_per_peer: 1,
            }),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7100).unwrap();
    let held = Arc::new(Mutex::new(Vec::new()));
    let held2 = held.clone();
    let _acceptor = std::thread::spawn(move || {
        while let Ok((s, _)) = l.accept() {
            held2.lock().push(s);
        }
    });

    let first = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).unwrap();
    let err = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock, "{err}");
    assert!(outer.stats().busy_rejected >= 1);

    // Tear the first relay down; its admission slot must come back.
    drop(first);
    held.lock().clear();
    wait_until("slot release", Duration::from_secs(5), || {
        nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7100)).is_ok()
    });
}

/// Hygiene: a relay with no traffic in `idle_timeout` is reaped and
/// the connection table drains back to zero.
#[test]
fn real_idle_relays_are_reaped() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_idle_timeout(Duration::from_millis(60)),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7200).unwrap();
    let _acceptor = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = l.accept() {
            held.push(s);
        }
    });
    let _idle = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7200)).unwrap();
    wait_until("idle relay present", Duration::from_secs(5), || {
        outer.active_relays() == 1
    });
    // Send nothing: the reaper must cut the pair loose.
    wait_until("idle reap", Duration::from_secs(5), || {
        outer.stats().idle_reaped >= 1 && outer.active_relays() == 0
    });
}

/// Graceful drain: shutdown with in-flight relays finishes the pumps
/// and reports an empty table.
#[test]
fn real_drain_finishes_in_flight_relays() {
    let w = real_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        w.net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = w.net.bind("etl-sun", 7300).unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let mut b = [0u8; 3];
        s.read_exact(&mut b).unwrap();
        b
    });
    let mut s = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7300)).unwrap();
    s.write_all(b"end").unwrap();
    assert_eq!(&srv.join().unwrap(), b"end");
    drop(s);
    assert!(outer.drain(Duration::from_secs(5)), "drain timed out");
    assert_eq!(outer.active_relays(), 0);
}

// ---------------------------------------------------------------------
// Sharded outer fleet: kill-one-shard chaos (DESIGN.md §6d).
// ---------------------------------------------------------------------

struct FleetNet {
    topo: Topology,
    rwcp_sun: NodeId,
    inner_host: NodeId,
    outer0: NodeId,
    outer1: NodeId,
    etl_sun: NodeId,
}

/// The liveness topology with a second outer-server host in the DMZ.
fn build_fleet() -> FleetNet {
    let mut topo = Topology::new();
    let rwcp = topo.add_site("rwcp", None);
    let dmz = topo.add_site("dmz", None);
    let etl = topo.add_site("etl", None);
    let rwcp_sun = topo.add_host("rwcp-sun", rwcp);
    let inner_host = topo.add_host("rwcp-inner", rwcp);
    let rwcp_sw = topo.add_switch("rwcp-sw", rwcp);
    let gw = topo.add_switch("rwcp-gw", dmz);
    let outer0 = topo.add_host("rwcp-outer0", dmz);
    let outer1 = topo.add_host("rwcp-outer1", dmz);
    let etl_sw = topo.add_switch("etl-sw", etl);
    let etl_sun = topo.add_host("etl-sun", etl);
    let lan = 6.5e6;
    let us = SimDuration::from_micros;
    topo.add_link(rwcp_sun, rwcp_sw, us(100), lan);
    topo.add_link(inner_host, rwcp_sw, us(100), lan);
    topo.add_link(rwcp_sw, gw, us(200), lan);
    topo.add_link(outer0, gw, us(100), lan);
    topo.add_link(outer1, gw, us(100), lan);
    topo.add_link(gw, etl_sw, SimDuration::from_millis(3), 170e3);
    topo.add_link(etl_sw, etl_sun, us(100), lan);
    topo.sites[rwcp.0 as usize].policy = Some(Policy::typical_with_nxport(
        "rwcp",
        inner_host.0,
        SIM_NXPORT,
    ));
    FleetNet {
        topo,
        rwcp_sun,
        inner_host,
        outer0,
        outer1,
        etl_sun,
    }
}

type FleetSharedRef = Arc<Mutex<FleetShared>>;

#[derive(Default)]
struct FleetShared {
    advertised: Option<(NodeId, u16)>,
    /// The gridmpi-style sequence numbers the server accepted, in
    /// order, deduplicated by the expected-next rule.
    accepted: Vec<u64>,
    done: bool,
    log: Vec<String>,
}

/// Server bound through the fleet: accepts relayed connections and
/// echoes each sequence number (idempotently accepting it).
struct FleetSeqServer {
    nx: NxClient,
    shared: FleetSharedRef,
}

impl FleetSeqServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                let mut sh = self.shared.lock();
                sh.advertised = Some(advertised);
                sh.log.push("bound".into());
            }
            NxHandled::Event(NxEvent::BindLost) => {
                // The serving shard died: the old rendezvous address
                // is gone; a re-bind is already underway.
                let mut sh = self.shared.lock();
                sh.advertised = None;
                sh.log.push("bind_lost".into());
            }
            NxHandled::Event(NxEvent::Accepted { .. }) => {
                self.shared.lock().log.push("accepted".into());
            }
            NxHandled::Data(d) => {
                let flow = d.flow;
                let seq = d.expect::<u64>();
                {
                    // Exactly-once accept: only the expected-next
                    // sequence advances; retransmits are echoed but
                    // not re-accepted.
                    let mut sh = self.shared.lock();
                    if seq == sh.accepted.len() as u64 {
                        sh.accepted.push(seq);
                    }
                }
                let _ = ctx.send(flow, 64, seq);
            }
            _ => {}
        }
    }
}

impl Actor for FleetSeqServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().advertised = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

const FLEET_POLL: u64 = 2;

/// Sends `total` sequence numbers, one at a time, each acknowledged by
/// the server's echo before the next goes out. A dead connection (the
/// shard crash tears the relay down) re-dials the *current* advertised
/// address and retransmits the unacknowledged sequence number.
struct FleetSeqSender {
    nx: NxClient,
    shared: FleetSharedRef,
    start_at: SimDuration,
    total: u64,
    next: u64,
    flow: Option<FlowId>,
}

impl FleetSeqSender {
    fn poll_soon(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(20), FLEET_POLL);
    }

    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, .. }) => {
                self.flow = Some(flow);
                ctx.send(flow, 64, self.next).unwrap();
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                // Stale rendezvous address (the bind moved shards
                // under us): wait for the fresh Bound and re-dial.
                self.poll_soon(ctx);
            }
            NxHandled::Data(d) => {
                let seq = d.expect::<u64>();
                if seq == self.next {
                    self.next += 1;
                    if self.next == self.total {
                        self.shared.lock().done = true;
                    } else if let Some(f) = self.flow {
                        let _ = ctx.send(f, 64, self.next);
                    }
                }
            }
            NxHandled::Flow(FlowEvent::Closed { flow, .. }) if Some(flow) == self.flow => {
                self.flow = None;
                if self.next < self.total {
                    self.poll_soon(ctx);
                }
            }
            _ => {}
        }
    }
}

impl Actor for FleetSeqSender {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.start_at, FLEET_POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == FLEET_POLL && self.flow.is_none() && self.next < self.total {
            let adv = self.shared.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 9),
                None => self.poll_soon(ctx),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

const FLEET_TOTAL: u64 = 40;

/// One kill-one-shard chaos run: a 2-shard fleet relays a stop-and-wait
/// sequence stream; at t=1.5s the shard *currently serving the bind*
/// is crashed (no restart). Returns the registry snapshot JSON, the
/// accepted sequence numbers, and the event log.
fn sim_fleet_kill_one_shard_run(seed: u64) -> (String, Vec<u64>, Vec<String>) {
    let net = build_fleet();
    let registry = Registry::new();
    let shared: FleetSharedRef = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), seed);
    let model = RelayModel::default();
    let hb = HeartbeatConfig {
        interval: Duration::from_millis(250),
        timeout: Duration::from_secs(1),
    };
    let br = BreakerConfig {
        threshold: 3,
        cooldown: Duration::from_millis(500),
    };
    let members = vec![(net.outer0, CTRL_PORT), (net.outer1, CTRL_PORT)];
    let outer_ids = [
        sim.spawn(
            net.outer0,
            Box::new(
                SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                    .with_fleet(members.clone(), 0)
                    .with_liveness(hb, br)
                    .with_obs(&registry),
            ),
        ),
        sim.spawn(
            net.outer1,
            Box::new(
                SimOuterServer::new(CTRL_PORT, Some((net.inner_host, SIM_NXPORT)), model)
                    .with_fleet(members.clone(), 1)
                    .with_liveness(hb, br)
                    .with_obs(&registry),
            ),
        ),
    ];
    sim.spawn(
        net.inner_host,
        Box::new(
            SimInnerServer::new(SIM_NXPORT, model)
                .with_registration_required()
                .with_obs(&registry),
        ),
    );
    sim.spawn(
        net.rwcp_sun,
        Box::new(FleetSeqServer {
            nx: NxClient::new(SimProxyEnv::direct())
                .with_fleet(members.clone())
                .with_obs(&registry),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(FleetSeqSender {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            start_at: SimDuration::from_millis(500),
            total: FLEET_TOTAL,
            next: 0,
            flow: None,
        }),
    );
    // Let the stream get going, then kill whichever shard owns the
    // bind (deterministic per seed, discovered mid-run).
    sim.run_until(SimTime(SimDuration::from_millis(1500).nanos()));
    let serving = shared
        .lock()
        .advertised
        .expect("bind did not complete before the chaos point")
        .0;
    let victim = if serving == net.outer0 {
        outer_ids[0]
    } else {
        outer_ids[1]
    };
    sim.install_faults(FaultPlan::new(seed).crash(victim, SimDuration::from_millis(1)));
    sim.run_until(SimTime(SimDuration::from_secs(60).nanos()));
    let sh = shared.lock();
    (
        registry.snapshot().to_json(),
        sh.accepted.clone(),
        sh.log.clone(),
    )
}

/// The tentpole acceptance scenario: killing the serving shard
/// mid-relay loses the rendezvous address, the client's breaker-driven
/// failover re-binds on the survivor (a knowing-fallback request the
/// survivor serves instead of redirecting), and the sequence stream
/// finishes with every number delivered exactly once, in order.
#[test]
fn sim_fleet_survives_killing_the_serving_shard() {
    let (json, accepted, log) = sim_fleet_kill_one_shard_run(17);
    assert_eq!(
        accepted,
        (0..FLEET_TOTAL).collect::<Vec<u64>>(),
        "lost or duplicated sequence numbers; log {log:?}"
    );
    // The bind moved shards: lost once, bound at least twice.
    assert!(log.contains(&"bind_lost".to_string()), "{log:?}");
    assert!(log.iter().filter(|l| *l == "bound").count() >= 2, "{log:?}");
    let snap = parse_counters(&json);
    let counter = |name: &str| snap.get(name).map_or(0, |v| v.0);
    // Breaker-driven failover: the dead owner's dials were charged
    // before the ladder descended to the survivor.
    assert!(counter("wacs.shard.failovers") >= 1, "{json}");
    assert!(counter("proxy.client.rebinds") >= 1, "{json}");
    // Both shards announced the map; the inner server installed it.
    assert!(counter("wacs.shard.map_syncs") >= 2, "{json}");
}

/// Same seed ⇒ byte-identical snapshots and accepted streams, shard
/// kill and all.
#[test]
fn sim_fleet_kill_one_shard_is_deterministic() {
    let (a, acc_a, log_a) = sim_fleet_kill_one_shard_run(31);
    let (b, acc_b, log_b) = sim_fleet_kill_one_shard_run(31);
    assert_eq!(a, b);
    assert_eq!(acc_a, acc_b);
    assert_eq!(log_a, log_b);
}

// ---------------------------------------------------------------------
// Sharded outer fleet on real sockets.
// ---------------------------------------------------------------------

const FLEET_HOSTS: [&str; 2] = ["rwcp-outer-a", "rwcp-outer-b"];

fn real_fleet_world() -> RealWorld {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    for h in FLEET_HOSTS {
        net.add_host(h, dmz);
    }
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    RealWorld { net }
}

fn fleet_members() -> Vec<(String, u16)> {
    FLEET_HOSTS
        .iter()
        .map(|h| ((*h).to_string(), OUTER_PORT))
        .collect()
}

/// The fleet map every party computes from the member list — used here
/// to pick a known owner / non-owner pair for the raw-protocol leg.
fn fleet_map() -> ShardMap {
    let tags = fleet_members()
        .iter()
        .map(|(h, p)| member_tag(&bind_key(h, *p)))
        .collect();
    ShardMap::new(1, tags)
}

fn start_fleet(w: &RealWorld) -> Vec<Option<OuterServer>> {
    let members = fleet_members();
    (0..members.len())
        .map(|idx| {
            Some(
                OuterServer::start(
                    w.net.clone(),
                    OuterConfig::new(FLEET_HOSTS[idx])
                        .with_inner("rwcp-inner", NXPORT)
                        .with_fleet(members.clone(), idx)
                        .with_heartbeat(HeartbeatConfig {
                            interval: Duration::from_millis(20),
                            timeout: Duration::from_millis(120),
                        })
                        .with_breaker(BreakerConfig {
                            threshold: 2,
                            cooldown: Duration::from_millis(40),
                        }),
                )
                .unwrap(),
            )
        })
        .collect()
}

/// Raw-protocol shard discipline: a non-owner answers a routable
/// `BindReq` with `Redirect` naming the owner, and the same request
/// flagged `fallback: true` (the client knowingly aimed at a
/// non-owner) is served instead of bounced.
#[test]
fn real_non_owner_redirects_and_fallback_serves() {
    let w = real_fleet_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let fleet = start_fleet(&w);

    // Pick a bind key and compute its owner the same way every fleet
    // party does, so we can aim deliberately at the non-owner.
    let (host, port) = ("rwcp-sun", 7007u16);
    let map = fleet_map();
    let owner = map.owner(&bind_key(host, port)).unwrap();
    let non_owner = 1 - owner;

    // Leg 1: the non-owner must not serve a first-choice request.
    let mut s = w
        .net
        .dial(host, FLEET_HOSTS[non_owner], OUTER_PORT)
        .unwrap();
    Msg::BindReq {
        host: host.to_string(),
        port,
        fallback: false,
    }
    .write_to(&mut s)
    .unwrap();
    assert_eq!(
        Msg::read_from(&mut s).unwrap(),
        Msg::Redirect {
            host: FLEET_HOSTS[owner].to_string(),
            port: OUTER_PORT,
        }
    );

    // Leg 2: the identical request with the fallback flag is served —
    // this is what keeps a dead owner from becoming a redirect loop.
    let mut s = w
        .net
        .dial(host, FLEET_HOSTS[non_owner], OUTER_PORT)
        .unwrap();
    Msg::BindReq {
        host: host.to_string(),
        port,
        fallback: true,
    }
    .write_to(&mut s)
    .unwrap();
    match Msg::read_from(&mut s).unwrap() {
        Msg::BindRep { rdv_port } => assert_ne!(rdv_port, 0, "fallback bind refused"),
        other => panic!("expected BindRep, got {other:?}"),
    }

    let json = fleet[non_owner].as_ref().unwrap().obs_snapshot().to_json();
    assert!(json.contains("wacs.shard.redirects_sent"), "{json}");
}

/// Breaker-driven failover on real sockets: kill the shard serving a
/// bind; subsequent binds through the fleet env succeed on the
/// survivor, the router's failover counter moves, and a relay
/// round-trip works end to end through a fallback-served bind.
#[test]
fn real_fleet_fails_over_when_a_shard_dies() {
    let w = real_fleet_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let mut fleet = start_fleet(&w);
    let router = FleetRouter::new(
        fleet_members(),
        BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(50),
        },
    );
    let env = ProxyEnv::via_fleet(router.clone());

    // First bind lands on whichever shard owns the ephemeral key; the
    // advertised rendezvous host names the serving shard.
    let first = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let serving = first.advertised.0.clone();
    let victim = FLEET_HOSTS.iter().position(|h| *h == serving).unwrap();
    let survivor = FLEET_HOSTS[1 - victim];
    drop(first);
    fleet[victim].take();

    // Every bind must keep succeeding; keys owned by the dead shard
    // descend the ladder (charging its breaker) and are fallback-served
    // by the survivor. Loop until the failover counter proves the
    // descent happened at least once.
    let mut last = None;
    for _ in 0..12 {
        let l = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
        assert_eq!(l.advertised.0, survivor, "bind served by a dead shard");
        last = Some(l);
        let json = router.obs_snapshot().to_json();
        if parse_counters(&json)
            .get("wacs.shard.failovers")
            .is_some_and(|v| v.0 >= 1)
        {
            break;
        }
    }
    let json = router.obs_snapshot().to_json();
    let snap = parse_counters(&json);
    assert!(
        snap.get("wacs.shard.failovers").is_some_and(|v| v.0 >= 1),
        "no failover recorded: {json}"
    );

    // The surviving bind still relays traffic end to end.
    let listener = last.unwrap();
    let adv = listener.advertised.clone();
    let srv = std::thread::spawn(move || {
        let mut s = listener.accept().unwrap();
        let mut b = [0u8; 4];
        s.read_exact(&mut b).unwrap();
        s.write_all(&b).unwrap();
        b
    });
    let mut peer = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
    peer.write_all(b"mpi0").unwrap();
    let mut echo = [0u8; 4];
    peer.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, b"mpi0");
    assert_eq!(&srv.join().unwrap(), b"mpi0");
}

// ---------------------------------------------------------------------
// Deterministic chaos faults on the real socket path (wacs-chaos).
// ---------------------------------------------------------------------

fn seeded_payload(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        v.extend_from_slice(&rng.next_u64().to_le_bytes());
    }
    v.truncate(len);
    v
}

/// A mid-`StripeFrame` RST on one lane must be absorbed as a lane
/// failover — the sender re-dials the stripe and re-sends it from the
/// start, the receiver's offset dedup absorbs whatever landed twice —
/// and must never surface as a `Conflict`, which is reserved for
/// corrupted duplicates (same offset, different bytes).
#[test]
fn real_stripe_lane_rst_fails_over_without_conflict() {
    let w = real_world();
    let _outer = OuterServer::start(w.net.clone(), OuterConfig::new("rwcp-outer")).unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Stripe sink: every accepted flow feeds the shared reassembler.
    // The RST'd lane ends in a mid-frame read error; swallowing it
    // here mirrors production sinks — the replay makes it whole.
    let receiver = StripeReceiver::new();
    let registry = Registry::new();
    let stats = StripeStats::in_registry(&registry);
    let sink = w.net.bind("etl-sun", 7411).unwrap();
    {
        let receiver = receiver.clone();
        let stats = stats.clone();
        std::thread::spawn(move || {
            while let Ok((s, _)) = sink.accept() {
                let receiver = receiver.clone();
                let stats = stats.clone();
                std::thread::spawn(move || {
                    let _ = s.set_read_timeout(Some(Duration::from_secs(10)));
                    let _ = receiver.feed(s, Some(&stats));
                });
            }
        });
    }

    // Chaos plan: RST exactly the first lane dial (seq 0), mid-frame,
    // a few KiB into the stripe; the long period keeps the other three
    // lanes and every re-dial clean.
    let profile = ChaosProfile::new(0x51ed).with_rule(FaultRule::every(
        DialLeg::StripeLane,
        FaultClass::Rst,
        64,
    ));
    let interposer = ChaosInterposer::new(profile, &registry);
    let hook = interposer.hook();

    // Each lane must carry more than the worst-case loopback socket
    // buffering (tcp_wmem max ≈ 4 MiB plus the peer's receive buffer)
    // so the sender is still mid-write when the tripped splice closes
    // and the kernel answers with a reset — a smaller stripe would sit
    // entirely in kernel buffers and the RST would be invisible to the
    // write-only lane (the same reason a real WAN sender only notices
    // a reset once its window fills).
    let payload = seeded_payload(0x57121, 32 << 20);
    let plan = StripePlan::new(payload.len() as u64, 4, 64 * 1024).unwrap();
    let dial = interposed_lane_dial(Some(&hook), "rwcp-sun", |_stripe, _attempt| {
        nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7411))
    });
    let report = send_striped(&payload, &plan, 1, 9, 8, Some(&stats), dial).unwrap();
    assert!(
        report.redials >= 1,
        "the RST'd lane must fail over: {report:?}"
    );

    wait_until("striped reassembly", Duration::from_secs(10), || {
        receiver.result().is_some()
    });
    let (tag, got) = receiver.result().unwrap();
    assert_eq!(tag, 9);
    assert_eq!(
        got, payload,
        "reassembled payload differs from the original"
    );
    assert!(stats.failovers.get() >= 1, "no lane failover recorded");
    assert_eq!(
        stats.conflicts.get(),
        0,
        "a lane RST replay was misdiagnosed as a Conflict"
    );
}

/// A client that writes half a control frame and then stalls must not
/// wedge the outer server: control sessions read under a deadline, and
/// the accept loop hands each session to its own thread, so concurrent
/// well-formed clients keep being served while the torn session ages
/// out against its read timeout.
#[test]
fn real_half_written_control_frame_does_not_wedge_accept_loop() {
    let w = real_world();
    let _outer = OuterServer::start(w.net.clone(), OuterConfig::new("rwcp-outer")).unwrap();
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

    // Echo sink for the legitimate clients.
    let sink = w.net.bind("etl-sun", 7412).unwrap();
    std::thread::spawn(move || {
        while let Ok((mut s, _)) = sink.accept() {
            std::thread::spawn(move || {
                let mut b = [0u8; 8];
                if s.read_exact(&mut b).is_ok() {
                    let _ = s.write_all(&b);
                }
            });
        }
    });

    // The stall: a recognizable prefix of a control frame, then
    // nothing — the socket stays open, the frame never completes.
    let mut stalled = w.net.dial("etl-sun", "rwcp-outer", OUTER_PORT).unwrap();
    stalled.write_all(&[1, 0, 0]).unwrap();

    // While the torn session is live, complete ops must go through.
    for round in 0..3u8 {
        let mut s = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", 7412)).unwrap();
        let msg = [b'o', b'p', round, 0, 1, 2, 3, 4];
        s.write_all(&msg).unwrap();
        let mut echo = [0u8; 8];
        s.read_exact(&mut echo).unwrap();
        assert_eq!(echo, msg, "op {round} failed behind the stalled frame");
    }
    drop(stalled);
}

/// A one-hop redirect raced by strictly-newer `ShardSync` installs:
/// while the fleet generation advances (same member set, rising
/// generation, pushed to the router and every shard), clients aimed at
/// a non-owner are redirected exactly once and served at the owner —
/// never bounced in a loop — and a bind taken before the generation
/// storm still accepts traffic after it.
#[test]
fn real_redirect_survives_concurrent_newer_shard_sync() {
    let w = real_fleet_world();
    let _inner = InnerServer::start(w.net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let fleet = start_fleet(&w);
    let router = FleetRouter::new(
        fleet_members(),
        BreakerConfig {
            threshold: 2,
            cooldown: Duration::from_millis(50),
        },
    );
    let env = ProxyEnv::via_fleet(router.clone());

    // A bind taken before the storm: it must survive every install.
    let pre = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
    let pre_adv = pre.advertised.clone();

    let map = fleet_map();
    let last_gen = 9u64;
    std::thread::scope(|scope| {
        let installer = {
            let router = router.clone();
            let fleet = &fleet;
            let members = fleet_members();
            scope.spawn(move || {
                for generation in 2..=last_gen {
                    router.install(generation, members.clone());
                    for outer in fleet.iter().flatten() {
                        outer.install_fleet(generation, members.clone());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        // Raw-protocol redirect legs in flight during the installs.
        // HRW ownership depends on the member tags, not the
        // generation, so the owner stays computable throughout.
        for i in 0..6u16 {
            let (host, port) = ("rwcp-sun", 7100 + i);
            let owner = map.owner(&bind_key(host, port)).unwrap();
            let non_owner = 1 - owner;
            let mut s = w
                .net
                .dial(host, FLEET_HOSTS[non_owner], OUTER_PORT)
                .unwrap();
            Msg::BindReq {
                host: host.to_string(),
                port,
                fallback: false,
            }
            .write_to(&mut s)
            .unwrap();
            match Msg::read_from(&mut s).unwrap() {
                Msg::Redirect { host: rh, port: rp } => {
                    assert_eq!(rh, FLEET_HOSTS[owner], "redirect must name the owner");
                    // Following the hop must terminate immediately:
                    // the owner serves, it never redirects onward.
                    let mut hop = w.net.dial(host, &rh, rp).unwrap();
                    Msg::BindReq {
                        host: host.to_string(),
                        port,
                        fallback: false,
                    }
                    .write_to(&mut hop)
                    .unwrap();
                    match Msg::read_from(&mut hop).unwrap() {
                        Msg::BindRep { rdv_port } => assert_ne!(rdv_port, 0),
                        other => panic!("redirect loop or refusal at the owner: {other:?}"),
                    }
                }
                other => panic!("non-owner must redirect a first-choice request: {other:?}"),
            }
        }
        installer.join().unwrap();
    });

    // Every party converged on the newest generation.
    assert_eq!(router.generation(), last_gen);
    for outer in fleet.iter().flatten() {
        assert_eq!(outer.fleet_generation(), last_gen);
    }

    // No lost bind: the pre-storm listener still relays end to end.
    let srv = std::thread::spawn(move || {
        let mut s = pre.accept().unwrap();
        let mut b = [0u8; 4];
        s.read_exact(&mut b).unwrap();
        s.write_all(&b).unwrap();
    });
    let mut peer = w.net.dial("etl-sun", &pre_adv.0, pre_adv.1).unwrap();
    peer.write_all(b"sync").unwrap();
    let mut echo = [0u8; 4];
    peer.read_exact(&mut echo).unwrap();
    assert_eq!(&echo, b"sync");
    srv.join().unwrap();
}
