//! Virtual-time tests of the Nexus Proxy actors on a firewalled
//! two-site topology.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::Policy;
use netsim::prelude::*;
use nexus_proxy::sim::{
    NxClient, NxEvent, NxHandled, RelayModel, SimInnerServer, SimOuterServer, SimProxyEnv,
};
use std::sync::Arc;
use wacs_sync::Mutex;

const CTRL_PORT: u16 = 5678;
const NXPORT: u16 = 911;

struct Net {
    topo: Topology,
    rwcp_sun: NodeId,
    compas0: NodeId,
    inner_host: NodeId,
    outer_host: NodeId,
    etl_sun: NodeId,
}

/// Figure 5 in miniature, with calibrated-ish parameters: fast LANs,
/// a slow WAN segment, deny-in firewall on the RWCP site with only the
/// nxport hole.
fn build() -> Net {
    let mut topo = Topology::new();
    let rwcp = topo.add_site("rwcp", None); // policy patched below
    let dmz = topo.add_site("dmz", None);
    let etl = topo.add_site("etl", None);
    let rwcp_sun = topo.add_host("rwcp-sun", rwcp);
    let compas0 = topo.add_host("compas0", rwcp);
    let inner_host = topo.add_host("rwcp-inner", rwcp);
    let rwcp_sw = topo.add_switch("rwcp-sw", rwcp);
    let gw = topo.add_switch("rwcp-gw", dmz);
    let outer_host = topo.add_host("rwcp-outer", dmz);
    let etl_sw = topo.add_switch("etl-sw", etl);
    let etl_sun = topo.add_host("etl-sun", etl);
    let lan = 6.5e6; // ~100Base-T goodput of the era
    let us = SimDuration::from_micros;
    topo.add_link(rwcp_sun, rwcp_sw, us(100), lan);
    topo.add_link(compas0, rwcp_sw, us(100), lan);
    topo.add_link(inner_host, rwcp_sw, us(100), lan);
    topo.add_link(rwcp_sw, gw, us(200), lan);
    topo.add_link(outer_host, gw, us(100), lan);
    topo.add_link(gw, etl_sw, SimDuration::from_millis(3), 170e3); // 1.5 Mbps IMnet
    topo.add_link(etl_sw, etl_sun, us(100), lan);
    // Deny-in policy with the single nxport hole to the inner host.
    topo.sites[rwcp.0 as usize].policy =
        Some(Policy::typical_with_nxport("rwcp", inner_host.0, NXPORT));
    Net {
        topo,
        rwcp_sun,
        compas0,
        inner_host,
        outer_host,
        etl_sun,
    }
}

/// Shared observation channel.
type Shared = Arc<Mutex<SharedState>>;

#[derive(Default)]
struct SharedState {
    advertised: Option<(NodeId, u16)>,
    log: Vec<String>,
}

/// An echo server using the NXProxy client machine.
struct EchoServer {
    nx: NxClient,
    shared: Shared,
}

impl EchoServer {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Bound { advertised }) => {
                self.shared.lock().advertised = Some(advertised);
                self.shared.lock().log.push("bound".into());
            }
            NxHandled::Event(NxEvent::Accepted { .. }) => {
                self.shared.lock().log.push("accepted".into());
            }
            NxHandled::Event(NxEvent::BindFailed) => {
                self.shared.lock().log.push("bind-failed".into());
            }
            NxHandled::Event(NxEvent::BindLost) => {
                // Old rendezvous address is dead; withdraw it until the
                // automatic re-bind completes.
                self.shared.lock().advertised = None;
                self.shared.lock().log.push("bind-lost".into());
            }
            NxHandled::Data(d) => {
                self.shared.lock().log.push(format!("echo {}", d.size));
                let _ = ctx.send_boxed(d.flow, d.size, d.payload);
            }
            _ => {}
        }
    }
}

impl Actor for EchoServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(adv) = self.nx.bind(ctx) {
            self.shared.lock().advertised = Some(adv);
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

/// A client that waits until the server's address is advertised, then
/// connects (via its own proxy env) and ping-pongs once.
struct PingClient {
    nx: NxClient,
    shared: Shared,
    size: u64,
    sent_at: Option<SimTime>,
}

impl PingClient {
    const POLL: u64 = 1;
}

impl PingClient {
    fn handle(&mut self, ctx: &mut Ctx<'_>, h: NxHandled) {
        match h {
            NxHandled::Event(NxEvent::Connected { flow, token }) => {
                assert_eq!(token, 42);
                self.sent_at = Some(ctx.now());
                ctx.send(flow, self.size, ()).unwrap();
            }
            NxHandled::Event(NxEvent::Refused { .. }) => {
                self.shared.lock().log.push("refused".into());
                ctx.stop_simulation();
            }
            NxHandled::Data(_) => {
                let rtt = ctx.now().since(self.sent_at.unwrap());
                self.shared
                    .lock()
                    .log
                    .push(format!("rtt_us {}", rtt.nanos() / 1000));
                ctx.stop_simulation();
            }
            _ => {}
        }
    }
}

impl Actor for PingClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(SimDuration::from_millis(1), Self::POLL);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if self.nx.owns_timer(token) {
            let h = self.nx.on_timer(ctx, token);
            self.handle(ctx, h);
            return;
        }
        if token == Self::POLL {
            let adv = self.shared.lock().advertised;
            match adv {
                Some(dst) => self.nx.connect(ctx, dst, 42),
                None => ctx.set_timer(SimDuration::from_millis(1), Self::POLL),
            }
        }
    }
    fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
        let h = self.nx.on_flow(ctx, ev);
        self.handle(ctx, h);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
        let h = self.nx.on_message(ctx, msg);
        self.handle(ctx, h);
    }
}

fn spawn_proxies(sim: &mut Simulator, net: &Net, model: RelayModel) {
    sim.spawn(
        net.outer_host,
        Box::new(SimOuterServer::new(
            CTRL_PORT,
            Some((net.inner_host, NXPORT)),
            model,
        )),
    );
    sim.spawn(net.inner_host, Box::new(SimInnerServer::new(NXPORT, model)));
}

fn rtt_us(log: &[String]) -> Option<u64> {
    log.iter()
        .find_map(|l| l.strip_prefix("rtt_us ").map(|v| v.parse().unwrap()))
}

/// The protocol trace of a virtual-time passive relay contains the
/// Figure 3/4 steps (sim-side counterpart of tests/figures_flow.rs).
#[test]
fn sim_trace_records_protocol_steps() {
    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    sim.enable_trace();
    spawn_proxies(&mut sim, &net, RelayModel::default());
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(PingClient {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            size: 64,
            sent_at: None,
        }),
    );
    sim.run();
    // Fig. 4 step 1-2: the bind request reached the outer server and a
    // rendezvous port was allocated.
    assert_eq!(
        sim.trace().grep("BindReq").len(),
        1,
        "{}",
        sim.trace().render()
    );
    // Step 3: the remote peer hit the rendezvous port.
    assert!(!sim.trace().grep("peer flow").is_empty());
    // Step 4: the inner server completed the relay toward the client.
    assert_eq!(sim.trace().grep("RelayReq").len(), 1);
    // And the run actually finished.
    assert!(shared.lock().log.iter().any(|l| l.starts_with("rtt_us")));
}

/// Wide-area passive relay: server inside RWCP, client at ETL.
#[test]
fn wan_client_reaches_firewalled_server_via_proxy() {
    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    let model = RelayModel::default();
    spawn_proxies(&mut sim, &net, model);
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(PingClient {
            nx: NxClient::new(SimProxyEnv::direct()), // ETL has no firewall
            shared: shared.clone(),
            size: 64,
            sent_at: None,
        }),
    );
    sim.run();
    let log = shared.lock().log.clone();
    assert!(log.contains(&"bound".to_string()), "{log:?}");
    assert!(log.contains(&"accepted".to_string()), "{log:?}");
    let rtt = rtt_us(&log).expect("no rtt");
    // Each direction crosses outer+inner (2 relays): RTT should exceed
    // 4 relay service times (~48ms with the default 12ms model).
    assert!(rtt > 40_000, "rtt {rtt}us");
    assert!(rtt < 200_000, "rtt {rtt}us");
}

/// Without the proxy, the same client cannot reach the server at all.
#[test]
fn wan_client_refused_without_proxy() {
    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    // Server binds directly (advertises its own, unreachable address).
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.etl_sun,
        Box::new(PingClient {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            size: 64,
            sent_at: None,
        }),
    );
    sim.run();
    let log = shared.lock().log.clone();
    assert!(log.contains(&"refused".to_string()), "{log:?}");
}

/// LAN-internal indirect path (RWCP-Sun ↔ COMPaS both proxied): works
/// and passes through both relays.
#[test]
fn lan_indirect_roundtrip() {
    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    let model = RelayModel::default();
    spawn_proxies(&mut sim, &net, model);
    let env = SimProxyEnv::via((net.outer_host, CTRL_PORT));
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(env),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.compas0,
        Box::new(PingClient {
            nx: NxClient::new(env),
            shared: shared.clone(),
            size: 4096,
            sent_at: None,
        }),
    );
    sim.run();
    let log = shared.lock().log.clone();
    assert!(log.iter().any(|l| l == "echo 4096"), "{log:?}");
    let rtt = rtt_us(&log).expect("no rtt");
    // Both directions pass outer+inner: ~4 service times plus copies.
    assert!(rtt > 48_000, "rtt {rtt}us");
}

/// Regression: a `BindRep { rdv_port: 0 }` (the outer server's
/// explicit allocation-failure reply) must surface as `BindFailed`,
/// never as a valid rendezvous at port 0.
#[test]
fn bind_rep_port_zero_is_rejected() {
    use nexus_proxy::sim::ProxyMsg;

    /// An outer server that answers every BindReq with rdv_port 0.
    struct BrokenOuter;
    impl Actor for BrokenOuter {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.listen(CTRL_PORT).unwrap();
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
            let flow = msg.flow;
            if let ProxyMsg::BindReq { .. } = msg.expect::<ProxyMsg>() {
                let _ = ctx.send(flow, 32, ProxyMsg::BindRep { rdv_port: 0 });
            }
        }
    }

    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    sim.spawn(net.outer_host, Box::new(BrokenOuter));
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    sim.run_until(SimTime(SimDuration::from_secs(5).nanos()));
    let s = shared.lock();
    assert!(s.log.contains(&"bind-failed".to_string()), "{:?}", s.log);
    assert!(!s.log.contains(&"bound".to_string()), "{:?}", s.log);
    assert!(s.advertised.is_none());
}

/// Outer-server crash/restart: the bound server sees `BindLost`,
/// automatically re-registers, and a late client still gets through on
/// the fresh rendezvous address.
#[test]
fn outer_restart_triggers_rebind_and_recovery() {
    let net = build();
    let shared: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    let model = RelayModel::default();
    let outer_id = sim.spawn(
        net.outer_host,
        Box::new(SimOuterServer::new(
            CTRL_PORT,
            Some((net.inner_host, NXPORT)),
            model,
        )),
    );
    sim.spawn(net.inner_host, Box::new(SimInnerServer::new(NXPORT, model)));
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::via((net.outer_host, CTRL_PORT))),
            shared: shared.clone(),
        }),
    );
    // Crash the outer server at 50ms, restart 100ms later.
    sim.install_faults(FaultPlan::new(3).crash_restart(
        outer_id,
        SimDuration::from_millis(50),
        SimDuration::from_millis(100),
        move || {
            Box::new(SimOuterServer::new(
                CTRL_PORT,
                Some((net.inner_host, NXPORT)),
                model,
            ))
        },
    ));
    // The client shows up well after the crash and must still connect.
    struct LatePing(PingClient);
    impl Actor for LatePing {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(SimDuration::from_millis(400), PingClient::POLL);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            self.0.on_timer(ctx, token);
        }
        fn on_flow(&mut self, ctx: &mut Ctx<'_>, ev: FlowEvent) {
            self.0.on_flow(ctx, ev);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_>, msg: Delivery) {
            self.0.on_message(ctx, msg);
        }
    }
    sim.spawn(
        net.etl_sun,
        Box::new(LatePing(PingClient {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            size: 64,
            sent_at: None,
        })),
    );
    sim.run_until(SimTime(SimDuration::from_secs(30).nanos()));
    let log = shared.lock().log.clone();
    assert!(log.contains(&"bind-lost".to_string()), "{log:?}");
    let bounds = log.iter().filter(|l| *l == "bound").count();
    assert_eq!(bounds, 2, "{log:?}");
    assert!(rtt_us(&log).is_some(), "client never got through: {log:?}");
    assert_eq!(sim.stats().actor_crashes, 1);
    assert_eq!(sim.stats().actor_restarts, 1);
}

/// Direct LAN baseline is orders of magnitude faster than the proxied
/// path — the Table 2 gap.
#[test]
fn proxy_latency_gap_matches_paper_shape() {
    // Direct: flip the firewall open and talk straight.
    let net = build();
    let shared: Shared = Arc::default();
    let mut topo = net.topo.clone();
    topo.sites[0].policy = None; // RWCP open for the direct baseline
    let mut sim = Simulator::new(topo, NetConfig::default(), 7);
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
        }),
    );
    sim.spawn(
        net.compas0,
        Box::new(PingClient {
            nx: NxClient::new(SimProxyEnv::direct()),
            shared: shared.clone(),
            size: 64,
            sent_at: None,
        }),
    );
    sim.run();
    let direct = rtt_us(&shared.lock().log).expect("no direct rtt");

    // Indirect: default firewalled topology through the proxies.
    let net = build();
    let shared2: Shared = Arc::default();
    let mut sim = Simulator::new(net.topo.clone(), NetConfig::default(), 7);
    spawn_proxies(&mut sim, &net, RelayModel::default());
    let env = SimProxyEnv::via((net.outer_host, CTRL_PORT));
    sim.spawn(
        net.rwcp_sun,
        Box::new(EchoServer {
            nx: NxClient::new(env),
            shared: shared2.clone(),
        }),
    );
    sim.spawn(
        net.compas0,
        Box::new(PingClient {
            nx: NxClient::new(env),
            shared: shared2.clone(),
            size: 64,
            sent_at: None,
        }),
    );
    sim.run();
    let indirect = rtt_us(&shared2.lock().log).expect("no indirect rtt");

    // The paper: 0.41ms → 25ms one-way (~60x). Accept a broad band.
    let factor = indirect as f64 / direct as f64;
    assert!(
        factor > 20.0,
        "factor {factor} (direct {direct}us, indirect {indirect}us)"
    );
}
