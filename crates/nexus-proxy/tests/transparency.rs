//! Property: the relay is byte-transparent. Whatever is written into
//! one end of a relayed connection — any content, any write-chunking,
//! either direction, active or passive open — comes out identically.

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
};
use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;

struct World {
    net: VNet,
    _outer: OuterServer,
    _inner: InnerServer,
}

fn world() -> World {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    let inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    )
    .unwrap();
    World {
        net,
        _outer: outer,
        _inner: inner,
    }
}

/// Write `data` in the given chunk sizes (cycled), then shutdown-write.
fn chunked_write(mut s: TcpStream, data: Vec<u8>, chunks: Vec<usize>) {
    std::thread::spawn(move || {
        let mut pos = 0;
        let mut i = 0;
        while pos < data.len() {
            let n = chunks[i % chunks.len()].max(1).min(data.len() - pos);
            if s.write_all(&data[pos..pos + n]).is_err() {
                return;
            }
            pos += n;
            i += 1;
        }
        let _ = s.shutdown(std::net::Shutdown::Write);
    });
}

fn read_all(mut s: TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

proptest! {
    // Socket-heavy: keep the case count modest.
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Passive relay (peer → outer → inner → client): arbitrary bytes
    /// with arbitrary write chunking arrive intact, and the echoed
    /// reverse direction too.
    #[test]
    fn prop_passive_relay_is_transparent(
        data in proptest::collection::vec(any::<u8>(), 1..20_000),
        chunks in proptest::collection::vec(1usize..4096, 1..6),
    ) {
        let w = world();
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
        let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
        let adv = listener.advertised.clone();
        // Inside server echoes everything then closes.
        let expected_len = data.len();
        let srv = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = vec![0u8; expected_len];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
            buf
        });
        let peer = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
        let reader = peer.try_clone().unwrap();
        chunked_write(peer, data.clone(), chunks);
        let mut echoed = vec![0u8; expected_len];
        let mut r = reader;
        r.read_exact(&mut echoed).unwrap();
        let received = srv.join().unwrap();
        prop_assert_eq!(&received, &data);
        prop_assert_eq!(&echoed, &data);
    }

    /// Active relay (client → outer → target): ditto.
    #[test]
    fn prop_active_relay_is_transparent(
        data in proptest::collection::vec(any::<u8>(), 1..20_000),
        chunks in proptest::collection::vec(1usize..4096, 1..6),
    ) {
        let w = world();
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
        let l = w.net.bind("etl-sun", 0).unwrap();
        let port = l.logical_port();
        let srv = std::thread::spawn(move || {
            let (s, _) = l.accept().unwrap();
            read_all(s)
        });
        let s = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", port)).unwrap();
        chunked_write(s, data.clone(), chunks);
        let received = srv.join().unwrap();
        prop_assert_eq!(&received, &data);
    }
}
