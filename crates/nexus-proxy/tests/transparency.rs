//! Property: the relay is byte-transparent. Whatever is written into
//! one end of a relayed connection — any content, any write-chunking,
//! either direction, active or passive open — comes out identically.
//!
//! Cases are generated from a seeded [`netsim::SimRng`] stream, so the
//! sweep is deterministic and reproducible offline.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use netsim::SimRng;
use nexus_proxy::protocol::{EncodeError, Msg, MAX_FRAME};
use nexus_proxy::{
    nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv,
    PumpMode, StripeFrame, MAX_CHUNK_BYTES, MAX_STRIPES, MAX_STRIPE_FRAME,
};
use std::io::{Read, Write};
use std::net::TcpStream;

struct World {
    net: VNet,
    outer: OuterServer,
    _inner: InnerServer,
}

/// The relay table must drain once both ends of every relayed
/// connection are gone — a leaked entry is a half-open relay the
/// reaper would eventually have to collect.
fn assert_relays_drained(w: &World) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while w.outer.active_relays() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "outer relay table still holds {} entries",
            w.outer.active_relays()
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn world_with(mode: PumpMode) -> World {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    // Both daemons run the selected data plane, so the reactor sweep
    // covers the full two-hop indirect chain, not just the outer hop.
    let inner = InnerServer::start(
        net.clone(),
        InnerConfig::new("rwcp-inner").with_pump_mode(mode),
    )
    .unwrap();
    let outer = OuterServer::start(
        net.clone(),
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_pump_mode(mode),
    )
    .unwrap();
    World {
        net,
        outer,
        _inner: inner,
    }
}

/// One random test case: payload plus a write-chunking schedule.
fn random_case(rng: &mut SimRng) -> (Vec<u8>, Vec<usize>) {
    let len = 1 + rng.below(20_000) as usize;
    let data: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
    let nchunks = 1 + rng.below(5) as usize;
    let chunks: Vec<usize> = (0..nchunks).map(|_| 1 + rng.below(4095) as usize).collect();
    (data, chunks)
}

/// Write `data` in the given chunk sizes (cycled), then shutdown-write.
fn chunked_write(mut s: TcpStream, data: Vec<u8>, chunks: Vec<usize>) {
    std::thread::spawn(move || {
        let mut pos = 0;
        let mut i = 0;
        while pos < data.len() {
            let n = chunks[i % chunks.len()].max(1).min(data.len() - pos);
            if s.write_all(&data[pos..pos + n]).is_err() {
                return;
            }
            pos += n;
            i += 1;
        }
        let _ = s.shutdown(std::net::Shutdown::Write);
    });
}

fn read_all(mut s: TcpStream) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = s.read_to_end(&mut out);
    out
}

/// Passive relay (peer → outer → inner → client): arbitrary bytes with
/// arbitrary write chunking arrive intact, and the echoed reverse
/// direction too. Socket-heavy: keep the case count modest.
#[test]
fn passive_relay_is_transparent() {
    passive_relay_is_transparent_with(PumpMode::ThreadPair, 0x9a55);
}

/// Same sweep through the multiplexed reactor data plane.
#[test]
fn passive_relay_is_transparent_reactor() {
    passive_relay_is_transparent_with(PumpMode::Reactor, 0x9a56);
}

fn passive_relay_is_transparent_with(mode: PumpMode, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..8 {
        let (data, chunks) = random_case(&mut rng);
        let w = world_with(mode);
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
        let listener = nx_proxy_bind(&w.net, &env, "rwcp-sun").unwrap();
        let adv = listener.advertised.clone();
        // Inside server echoes everything then closes.
        let expected_len = data.len();
        let srv = std::thread::spawn(move || {
            let mut s = listener.accept().unwrap();
            let mut buf = vec![0u8; expected_len];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
            buf
        });
        let peer = w.net.dial("etl-sun", &adv.0, adv.1).unwrap();
        let reader = peer.try_clone().unwrap();
        chunked_write(peer, data.clone(), chunks);
        let mut echoed = vec![0u8; expected_len];
        let mut r = reader;
        r.read_exact(&mut echoed).unwrap();
        let received = srv.join().unwrap();
        assert_eq!(received, data);
        assert_eq!(echoed, data);
        drop(r);
        assert_relays_drained(&w);
    }
}

// ---------------------------------------------------------------------
// Wire-protocol properties (seeded sweeps, same determinism policy as
// the relay cases above).
// ---------------------------------------------------------------------

/// A random instance of every control-message type.
fn random_msgs(rng: &mut SimRng) -> Vec<Msg> {
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789.-";
    let mut s = |max_len: u64| -> String {
        let len = rng.below(max_len + 1) as usize;
        (0..len)
            .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize] as char)
            .collect()
    };
    let host = s(64);
    let detail = s(256);
    let nbinds = s(5).len();
    let mut binds: Vec<(String, u16)> = Vec::with_capacity(nbinds);
    for _ in 0..nbinds {
        let h = s(32);
        let p = s(8).len() as u16;
        binds.push((h, p));
    }
    let nmembers = s(4).len();
    let mut members: Vec<(String, u16)> = Vec::with_capacity(nmembers);
    for _ in 0..nmembers {
        let h = s(32);
        let p = s(8).len() as u16;
        members.push((h, p));
    }
    let port = rng.below(u64::from(u16::MAX) + 1) as u16;
    let rdv_port = rng.below(u64::from(u16::MAX) + 1) as u16;
    let ok = rng.below(2) == 1;
    let seq = rng.below(u64::from(u32::MAX) + 1) as u32;
    let gen = rng.below(1 << 32);
    let sender = rng.below(16) as u16;
    vec![
        Msg::ConnectReq {
            host: host.clone(),
            port,
        },
        Msg::ConnectRep { ok, detail },
        Msg::BindReq {
            host: host.clone(),
            port,
            fallback: !ok,
        },
        Msg::BindRep { rdv_port },
        Msg::RelayReq {
            host: host.clone(),
            port,
        },
        Msg::RelayRep { ok },
        Msg::Ping { seq },
        Msg::Pong { seq },
        Msg::Busy,
        Msg::BindSync { binds },
        Msg::Redirect { host, port },
        Msg::ShardSync {
            gen,
            sender,
            members,
        },
    ]
}

/// Every message type round-trips through encode/decode, and the
/// frame's length prefix always matches its body.
#[test]
fn every_record_type_roundtrips() {
    let mut rng = SimRng::seed_from_u64(0x0b5);
    for _ in 0..200 {
        for msg in random_msgs(&mut rng) {
            let framed = msg.encode().unwrap();
            let len = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
            assert_eq!(len, framed.len() - 4, "length prefix disagrees: {msg:?}");
            assert_eq!(Msg::decode(&framed[4..]).unwrap(), msg);
        }
    }
}

/// Both encode-side caps are exact and fire in field order. The
/// largest `BindReq` whose frame payload is exactly [`MAX_FRAME`]
/// round-trips; one more byte is refused with the symmetric
/// [`EncodeError::FrameTooLarge`] (the cap the decoder enforces); and
/// a string past the u16 wire-length limit is the typed, field-named
/// [`EncodeError::StringTooLong`].
#[test]
fn string_length_boundary_is_exact() {
    // BindReq payload: type(1) + hlen(2) + host + port(2) + fallback(1).
    let max_host = MAX_FRAME as usize - 6;
    let msg = Msg::BindReq {
        host: "h".repeat(max_host),
        port: 1,
        fallback: true,
    };
    let framed = msg.encode().unwrap();
    assert_eq!(framed.len() - 4, MAX_FRAME as usize);
    assert_eq!(Msg::decode(&framed[4..]).unwrap(), msg);

    let over_frame = Msg::BindReq {
        host: "h".repeat(max_host + 1),
        port: 1,
        fallback: true,
    };
    assert_eq!(
        over_frame.encode().unwrap_err(),
        EncodeError::FrameTooLarge {
            len: MAX_FRAME as usize + 1,
        }
    );

    let over = "h".repeat(usize::from(u16::MAX) + 1);
    for (msg, field) in [
        (
            Msg::ConnectReq {
                host: over.clone(),
                port: 1,
            },
            "host",
        ),
        (
            Msg::BindReq {
                host: over.clone(),
                port: 1,
                fallback: false,
            },
            "host",
        ),
        (
            Msg::RelayReq {
                host: over.clone(),
                port: 1,
            },
            "host",
        ),
        (
            Msg::ConnectRep {
                ok: true,
                detail: over.clone(),
            },
            "detail",
        ),
    ] {
        assert_eq!(
            msg.encode().unwrap_err(),
            EncodeError::StringTooLong {
                field,
                len: usize::from(u16::MAX) + 1,
            }
        );
    }
}

/// Totality under truncation: chop a *valid* frame body at every
/// possible length — the decoder must return an error (or, never, a
/// wrong message), and must not panic. This covers every partial-read
/// shape a flaky transport can hand the parser.
#[test]
fn truncated_frames_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x7204c);
    for _ in 0..20 {
        for msg in random_msgs(&mut rng) {
            let framed = msg.encode().unwrap();
            let body = &framed[4..];
            for cut in 0..body.len() {
                assert!(
                    Msg::decode(&body[..cut]).is_err(),
                    "truncated {msg:?} at {cut}/{} decoded",
                    body.len()
                );
            }
        }
    }
}

/// Totality on arbitrary bytes: random buffers (including ones that
/// start with a valid type tag) never panic the decoder.
#[test]
fn random_buffers_never_panic() {
    let mut rng = SimRng::seed_from_u64(0xf022ed);
    for round in 0..4000u64 {
        let len = (round % 96) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        if round % 2 == 0 && !bytes.is_empty() {
            // Half the corpus gets a valid type tag so the field
            // parsers (not just the tag switch) see the fuzz.
            bytes[0] = (rng.below(12) + 1) as u8;
        }
        let _ = Msg::decode(&bytes);
    }
}

/// Totality under corruption: flip single bits in valid frame bodies
/// of *every* control-frame variant. The decoder must either error or
/// produce some well-formed message — never panic, never over-read.
#[test]
fn bit_flipped_frames_never_panic() {
    let mut rng = SimRng::seed_from_u64(0xb17f11);
    for _ in 0..20 {
        for msg in random_msgs(&mut rng) {
            let framed = msg.encode().unwrap();
            let body = framed[4..].to_vec();
            for _ in 0..16 {
                let mut corrupt = body.clone();
                let byte = rng.below(corrupt.len() as u64) as usize;
                let bit = rng.below(8) as u8;
                corrupt[byte] ^= 1 << bit;
                let _ = Msg::decode(&corrupt);
            }
        }
    }
}

/// Oversize declared lengths are refused before any body allocation:
/// a frame header announcing more than [`MAX_FRAME`] bytes errors out
/// of `read_from` even though no body bytes follow — the reader never
/// waits for (or allocates) the announced mountain of data.
#[test]
fn oversize_declared_lengths_are_rejected_up_front() {
    let mut rng = SimRng::seed_from_u64(0x0515e);
    for _ in 0..64 {
        let len = MAX_FRAME + 1 + (rng.below(u64::from(u32::MAX - MAX_FRAME)) as u32);
        let header = len.to_be_bytes();
        let mut cursor = std::io::Cursor::new(header.to_vec());
        let err = Msg::read_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
        // Nothing past the 4-byte header was consumed.
        assert_eq!(cursor.position(), 4);
    }
}

// ---------------------------------------------------------------------
// Stripe bulk-data frames (DESIGN.md §6e): the same totality sweeps as
// the control protocol, over every `StripeFrame` variant.
// ---------------------------------------------------------------------

/// A random instance of every stripe-frame type.
fn random_stripe_frames(rng: &mut SimRng) -> Vec<StripeFrame> {
    let transfer = rng.below(1 << 48);
    let stripe = rng.below(u64::from(MAX_STRIPES)) as u16;
    let nbytes = rng.below(2048) as usize;
    let bytes: Vec<u8> = (0..nbytes).map(|_| rng.below(256) as u8).collect();
    vec![
        StripeFrame::Open {
            transfer,
            stripe,
            stripes: 1 + rng.below(u64::from(MAX_STRIPES)) as u16,
            chunk: 1 + rng.below(u64::from(MAX_CHUNK_BYTES)) as u32,
            total_len: rng.below(1 << 30),
            tag: rng.below(1 << 32) as i32,
        },
        StripeFrame::Data {
            transfer,
            stripe,
            seq: rng.below(1 << 20),
            offset: rng.below(1 << 30),
            bytes,
        },
        StripeFrame::Fin {
            transfer,
            stripe,
            chunks: rng.below(1 << 20),
        },
        StripeFrame::Done {
            transfer,
            total_len: rng.below(1 << 30),
        },
    ]
}

/// Every stripe-frame type round-trips through encode/decode, and the
/// length prefix always matches the body.
#[test]
fn every_stripe_frame_roundtrips() {
    let mut rng = SimRng::seed_from_u64(0x57a1e);
    for _ in 0..200 {
        for frame in random_stripe_frames(&mut rng) {
            let framed = frame.encode().unwrap();
            let len = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
            assert_eq!(len, framed.len() - 4, "length prefix disagrees: {frame:?}");
            assert_eq!(StripeFrame::decode_body(&framed[4..]).unwrap(), frame);
        }
    }
}

/// Totality under truncation. `Data` carries its chunk as the frame
/// remainder, so a truncated `Data` may legally decode to a *shorter*
/// chunk — the reassembler's length cross-check rejects it later. The
/// decoder itself must never panic and never reproduce the original
/// message from a cut body; fixed-layout variants must error outright.
#[test]
fn truncated_stripe_frames_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x57a2e);
    for _ in 0..20 {
        for frame in random_stripe_frames(&mut rng) {
            let framed = frame.encode().unwrap();
            let body = &framed[4..];
            for cut in 0..body.len() {
                if let Ok(got) = StripeFrame::decode_body(&body[..cut]) {
                    assert!(
                        matches!(frame, StripeFrame::Data { .. }),
                        "truncated {frame:?} at {cut}/{} decoded",
                        body.len()
                    );
                    assert_ne!(got, frame, "cut body reproduced the full frame");
                }
            }
        }
    }
}

/// Totality under corruption: flip single bits in valid bodies of
/// every stripe-frame variant — never panic, never over-read. A flip
/// in a `Data` chunk body decodes fine by design; the reassembler's
/// byte-compare (`Conflict`) is what catches it, which the wacs-check
/// `stripe` model verifies exhaustively.
#[test]
fn bit_flipped_stripe_frames_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x57a3e);
    for _ in 0..20 {
        for frame in random_stripe_frames(&mut rng) {
            let framed = frame.encode().unwrap();
            let body = framed[4..].to_vec();
            for _ in 0..16 {
                let mut corrupt = body.clone();
                let byte = rng.below(corrupt.len() as u64) as usize;
                let bit = rng.below(8) as u8;
                corrupt[byte] ^= 1 << bit;
                let _ = StripeFrame::decode_body(&corrupt);
            }
        }
    }
}

/// Totality on arbitrary bytes: random buffers (half with a valid
/// stripe type tag) never panic the stripe decoder.
#[test]
fn random_stripe_buffers_never_panic() {
    let mut rng = SimRng::seed_from_u64(0x57a4e);
    for round in 0..4000u64 {
        let len = (round % 96) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        if round % 2 == 0 && !bytes.is_empty() {
            bytes[0] = (rng.below(4) + 1) as u8;
        }
        let _ = StripeFrame::decode_body(&bytes);
    }
}

/// Oversize (or zero) declared stripe-frame lengths are refused before
/// any body allocation — the length prefix rides a relayed pipe and is
/// peer-controlled.
#[test]
fn oversize_stripe_lengths_are_rejected_up_front() {
    let mut rng = SimRng::seed_from_u64(0x57a5e);
    let mut cases = vec![0u32, MAX_STRIPE_FRAME + 1, u32::MAX];
    for _ in 0..61 {
        cases.push(MAX_STRIPE_FRAME + 1 + rng.below(u64::from(u32::MAX - MAX_STRIPE_FRAME)) as u32);
    }
    for len in cases {
        let header = len.to_be_bytes();
        let mut cursor = std::io::Cursor::new(header.to_vec());
        let err = StripeFrame::read_from(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
        // Nothing past the 4-byte header was consumed.
        assert_eq!(cursor.position(), 4);
    }
}

/// Active relay (client → outer → target): ditto.
#[test]
fn active_relay_is_transparent() {
    active_relay_is_transparent_with(PumpMode::ThreadPair, 0xac71);
}

/// Same sweep through the multiplexed reactor data plane.
#[test]
fn active_relay_is_transparent_reactor() {
    active_relay_is_transparent_with(PumpMode::Reactor, 0xac72);
}

fn active_relay_is_transparent_with(mode: PumpMode, seed: u64) {
    let mut rng = SimRng::seed_from_u64(seed);
    for _ in 0..8 {
        let (data, chunks) = random_case(&mut rng);
        let w = world_with(mode);
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
        let l = w.net.bind("etl-sun", 0).unwrap();
        let port = l.logical_port();
        let srv = std::thread::spawn(move || {
            let (s, _) = l.accept().unwrap();
            read_all(s)
        });
        let s = nx_proxy_connect(&w.net, &env, "rwcp-sun", ("etl-sun", port)).unwrap();
        chunked_write(s, data.clone(), chunks);
        let received = srv.join().unwrap();
        assert_eq!(received, data);
        assert_relays_drained(&w);
    }
}
