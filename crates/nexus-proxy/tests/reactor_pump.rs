//! Integration tests for the multiplexed reactor data plane
//! ([`nexus_proxy::reactor`]) behind a real outer server: byte-identical
//! transfer across a chunk-size sweep, half-close semantics, idle-reaper
//! integration (including the fresh-relay regression), and graceful
//! drain — the same liveness guarantees the thread-pair pump gives.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use firewall::vnet::VNet;
use firewall::{Policy, NXPORT, OUTER_PORT};
use nexus_proxy::{
    nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer, ProxyEnv, PumpMode,
};
use std::io::{Read, Write};
use std::time::Duration;

fn real_world() -> VNet {
    let net = VNet::new();
    let rwcp = net.add_site("rwcp", Some(Policy::typical("rwcp")));
    let dmz = net.add_site("dmz", None);
    let etl = net.add_site("etl", None);
    net.add_host("rwcp-sun", rwcp);
    let inner_ref = net.add_host("rwcp-inner", rwcp);
    net.add_host("rwcp-outer", dmz);
    net.add_host("etl-sun", etl);
    net.reload_policy(rwcp, Policy::typical_with_nxport("rwcp", inner_ref, NXPORT));
    net
}

fn reactor_outer(net: &VNet, cfg: OuterConfig) -> OuterServer {
    OuterServer::start(net.clone(), cfg.with_pump_mode(PumpMode::Reactor)).unwrap()
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let end = std::time::Instant::now() + deadline;
    while !cond() {
        assert!(std::time::Instant::now() < end, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Chunk-size sweep, 512 B – 64 KiB: the relay must be byte-identical
/// and honour half-close at every configured chunk size. The client
/// writes the full payload, half-closes, and still receives the echo —
/// so EOF propagation must not tear down the reply direction.
#[test]
fn chunk_sweep_is_byte_identical_with_half_close() {
    for &chunk in &[512usize, 2048, 8192, 65536] {
        let net = real_world();
        let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
        let mut cfg = OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT);
        cfg.chunk = chunk;
        let outer = reactor_outer(&net, cfg);
        let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);

        let l = net.bind("etl-sun", 7400).unwrap();
        let payload: Vec<u8> = (0..150_000u32)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        let want = payload.clone();
        let srv = std::thread::spawn(move || {
            let (mut s, _) = l.accept().unwrap();
            let mut got = Vec::new();
            s.read_to_end(&mut got).unwrap();
            assert_eq!(got, want, "chunk={}", want.len());
            s.write_all(&got).unwrap();
        });

        let mut s = nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", 7400)).unwrap();
        s.write_all(&payload).unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut echoed = Vec::new();
        s.read_to_end(&mut echoed).unwrap();
        assert_eq!(echoed, payload, "chunk={chunk}");
        srv.join().unwrap();
        drop(s);
        wait_until("relay table drain", Duration::from_secs(5), || {
            outer.active_relays() == 0
        });
    }
}

/// Regression: a *fresh* relay must not be instantly reapable. With
/// `RelayActivity::new` initializing the clock to 0 instead of "now", a
/// relay that had not yet moved a byte looked idle-since-epoch and a
/// short idle timeout could reap it at birth.
#[test]
fn fresh_relay_survives_short_idle_timeout() {
    let net = real_world();
    let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = reactor_outer(
        &net,
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_idle_timeout(Duration::from_millis(400)),
    );
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = net.bind("etl-sun", 7500).unwrap();
    let _acceptor = std::thread::spawn(move || {
        let mut held = Vec::new();
        while let Ok((s, _)) = l.accept() {
            held.push(s);
        }
    });
    // Open the relay and send nothing at all.
    let _idle = nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", 7500)).unwrap();
    wait_until("relay tracked", Duration::from_secs(5), || {
        outer.active_relays() == 1
    });
    // Well inside the idle window a traffic-free relay must still be
    // alive: the reaper ticks every idle_timeout/4, so by 200 ms it has
    // swept a fresh entry several times.
    std::thread::sleep(Duration::from_millis(200));
    let snap = outer.stats();
    assert_eq!(
        (snap.idle_reaped, outer.active_relays()),
        (0, 1),
        "fresh relay reaped before its idle timeout"
    );
    // ... and once the timeout genuinely elapses, it is reaped.
    wait_until("idle reap", Duration::from_secs(5), || {
        outer.stats().idle_reaped >= 1 && outer.active_relays() == 0
    });
}

/// The idle-reaper reads reactor relays through the same shared
/// activity clock: traffic defers reaping, silence triggers it.
#[test]
fn reactor_relays_are_reaped_only_when_idle() {
    let net = real_world();
    let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = reactor_outer(
        &net,
        OuterConfig::new("rwcp-outer")
            .with_inner("rwcp-inner", NXPORT)
            .with_idle_timeout(Duration::from_millis(150)),
    );
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = net.bind("etl-sun", 7600).unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let mut b = [0u8; 1];
        while s.read_exact(&mut b).is_ok() {
            if s.write_all(&b).is_err() {
                break;
            }
        }
    });
    let mut s = nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", 7600)).unwrap();
    // Keep the relay busy well past the idle timeout: activity renews.
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(50));
        s.write_all(b"x").unwrap();
        let mut b = [0u8; 1];
        s.read_exact(&mut b).unwrap();
    }
    assert_eq!(outer.stats().idle_reaped, 0, "active relay was reaped");
    assert_eq!(outer.active_relays(), 1);
    // Now go silent (but keep the sockets open): the reaper cuts it.
    wait_until("idle reap", Duration::from_secs(5), || {
        outer.stats().idle_reaped >= 1 && outer.active_relays() == 0
    });
    drop(s);
    srv.join().unwrap();
}

/// Graceful drain in reactor mode: shutdown with an in-flight relay
/// lets it finish and the table reports empty.
#[test]
fn reactor_drain_finishes_in_flight_relays() {
    let net = real_world();
    let _inner = InnerServer::start(net.clone(), InnerConfig::new("rwcp-inner")).unwrap();
    let outer = reactor_outer(
        &net,
        OuterConfig::new("rwcp-outer").with_inner("rwcp-inner", NXPORT),
    );
    let env = ProxyEnv::via("rwcp-outer", OUTER_PORT);
    let l = net.bind("etl-sun", 7700).unwrap();
    let srv = std::thread::spawn(move || {
        let (mut s, _) = l.accept().unwrap();
        let mut b = [0u8; 3];
        s.read_exact(&mut b).unwrap();
        b
    });
    let mut s = nx_proxy_connect(&net, &env, "rwcp-sun", ("etl-sun", 7700)).unwrap();
    s.write_all(b"end").unwrap();
    assert_eq!(&srv.join().unwrap(), b"end");
    drop(s);
    assert!(outer.drain(Duration::from_secs(5)), "drain timed out");
    assert_eq!(outer.active_relays(), 0);
}
