//! # WACS — a firewall-compliant Globus-style wide-area cluster system
//!
//! A from-scratch Rust reproduction of *"Performance Evaluation of a
//! Firewall-compliant Globus-based Wide-area Cluster System"* (Tanaka,
//! Sato, Nakada, Sekiguchi, Hirano — HPDC 2000).
//!
//! The workspace implements the paper's full stack twice over:
//!
//! * **real sockets** — every daemon (outer/inner proxy servers,
//!   gatekeeper, resource allocator, Q servers, MPI ranks) runs as a
//!   thread over a firewall-*guarded* loopback network
//!   ([`firewall::vnet`]), so deny-based policies actually refuse the
//!   connections they would refuse on the wire;
//! * **virtual time** — a deterministic discrete-event simulator
//!   ([`netsim`]) with the paper's calibrated testbed
//!   ([`wacs_core::testbed`]) regenerates the wide-area measurements
//!   (Tables 2 and 4-6).
//!
//! ## Crates
//!
//! | crate | paper artifact |
//! |---|---|
//! | [`firewall`] | deny/allow-based border policies + guarded loopback network |
//! | [`netsim`] | the wide-area testbed substrate (DES) |
//! | [`nexus_proxy`] | **the Nexus Proxy** (outer/inner relay servers, §3) |
//! | [`nexus`] | Nexus-style startpoint/endpoint communication |
//! | [`rmf`] | **RMF** — Resource Manager beyond the Firewall (§2) |
//! | [`gridmpi`] | MPICH-G-style MPI over nexus |
//! | [`knapsack`] | the 0-1 knapsack master/slave workload (§4) |
//! | [`wacs_core`] | testbed description, calibration, experiment harness |
//!
//! ## Quick taste
//!
//! ```
//! use wacs::prelude::*;
//!
//! // A deny-in firewall admits nothing inbound…
//! let net = VNet::new();
//! let inside = net.add_site("inside", Some(Policy::typical("inside")));
//! let outside = net.add_site("outside", None);
//! net.add_host("server", inside);
//! net.add_host("client", outside);
//! let _listener = net.bind("server", 5000).unwrap();
//! assert!(net.dial("client", "server", 5000).is_err());
//! ```
//!
//! See `examples/` for the proxy, RMF, and wide-area MPI in action,
//! and `crates/bench` for the table-regeneration harness.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used, clippy::panic))]
pub use firewall;
pub use gridmpi;
pub use knapsack;
pub use netsim;
pub use nexus;
pub use nexus_proxy;
pub use rmf;
pub use wacs_core;
pub use wacs_obs;

/// The most common imports for building a firewall-compliant cluster.
pub mod prelude {
    pub use firewall::vnet::VNet;
    pub use firewall::{Policy, NXPORT, OUTER_PORT};
    pub use gridmpi::{run_world, Comm, RankSpec, ReduceOp};
    pub use knapsack::{Instance, ParParams};
    pub use nexus::{NexusContext, PortPolicy};
    pub use nexus_proxy::{
        nx_proxy_bind, nx_proxy_connect, InnerConfig, InnerServer, OuterConfig, OuterServer,
        ProxyEnv,
    };
    pub use rmf::{
        rmf_site_policy, submit_job, wait_job, ExecRegistry, FlowTrace, GassStore, Gatekeeper,
        JobState, QServer, ResourceAllocator, ResourceInfo, SelectPolicy,
    };
    pub use wacs_core::{
        decompose, pingpong, run_knapsack, run_knapsack_with_faults, sequential_baseline,
        table2_report, Decomposition, FaultConfig, FaultRun, FirewallMode, KnapsackRun,
        Mode as PpMode, Pair as PpPair, PaperTestbed, System,
    };
    pub use wacs_obs::{Registry, RegistrySnapshot};
}
